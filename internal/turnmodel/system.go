package turnmodel

import (
	"fmt"

	"repro/internal/cgraph"
)

// System binds a communication graph to a direction scheme and a per-node
// allowed-turn configuration. It answers the two questions every routing
// algorithm here needs answered exactly:
//
//  1. Is a specific channel-to-channel transition allowed?
//  2. Does the configuration admit a turn cycle (Definition 7) — i.e., can
//     the corresponding wormhole network deadlock?
//
// Per-node masks (rather than one global mask) are what make the paper's
// Phase 3 expressible: the DOWN/UP routing releases specific prohibited
// turns at specific nodes when no turn cycle can pass through them.
type System struct {
	CG      *cgraph.CG
	Scheme  Scheme
	Dirs    []Dir  // per channel, in the scheme's alphabet
	Allowed []Mask // per node
	// AllowUTurn permits a packet to leave on the reverse channel of the one
	// it arrived on. Real wormhole switches do not do this, and no algorithm
	// in this repository needs it, so it defaults to false.
	AllowUTurn bool
}

// NewSystem builds a System in which every node carries the same base mask.
func NewSystem(cg *cgraph.CG, scheme Scheme, base Mask) *System {
	allowed := make([]Mask, cg.N())
	for i := range allowed {
		allowed[i] = base
	}
	return &System{
		CG:      cg,
		Scheme:  scheme,
		Dirs:    AssignDirs(cg, scheme),
		Allowed: allowed,
	}
}

// TurnAllowed reports whether a packet that arrived on channel cIn may leave
// on channel cOut. cIn's sink must be cOut's start; this is the caller's
// responsibility (callers always iterate cg.Out[cIn.To]).
//
// Same-direction continuation is always allowed: Definition 8's turn set
// contains only pairs of distinct directions, so a prohibition can never
// name such a pair.
func (s *System) TurnAllowed(cIn, cOut int) bool {
	if !s.AllowUTurn && s.CG.Reverse(cIn) == cOut {
		return false
	}
	d1, d2 := s.Dirs[cIn], s.Dirs[cOut]
	if d1 == d2 {
		return true
	}
	return s.Allowed[s.CG.Channels[cIn].To].Allowed(d1, d2)
}

// successors appends to buf the channels that may follow channel c and
// returns the extended slice.
func (s *System) successors(c int, buf []int) []int {
	for _, nxt := range s.CG.Out[s.CG.Channels[c].To] {
		if s.TurnAllowed(c, nxt) {
			buf = append(buf, nxt)
		}
	}
	return buf
}

// FindTurnCycle searches the channel dependency graph — nodes are channels,
// edges are allowed transitions — for a cycle, returning the channel ids
// along one if found, or nil if the configuration is turn-cycle-free.
// A nil result certifies deadlock freedom for wormhole switching under this
// configuration (Dally–Seitz: an acyclic channel dependency graph suffices).
func (s *System) FindTurnCycle() []int {
	n := len(s.Dirs)
	// Iterative colored DFS: 0 = white, 1 = on stack, 2 = done.
	color := make([]uint8, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var succBuf []int
	// frame stack: channel + index into its successor list. Successor lists
	// are recomputed per expansion to avoid materializing the whole graph.
	type frame struct {
		c     int
		succs []int
		i     int
	}
	var stack []frame
	for start := 0; start < n; start++ {
		if color[start] != 0 {
			continue
		}
		color[start] = 1
		succBuf = s.successors(start, succBuf[:0])
		stack = append(stack[:0], frame{start, append([]int(nil), succBuf...), 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.i >= len(f.succs) {
				color[f.c] = 2
				stack = stack[:len(stack)-1]
				continue
			}
			nxt := f.succs[f.i]
			f.i++
			switch color[nxt] {
			case 0:
				color[nxt] = 1
				parent[nxt] = f.c
				succBuf = s.successors(nxt, succBuf[:0])
				stack = append(stack, frame{nxt, append([]int(nil), succBuf...), 0})
			case 1:
				// Back edge f.c -> nxt: reconstruct the cycle.
				cyc := []int{f.c}
				for v := f.c; v != nxt; {
					v = parent[v]
					cyc = append(cyc, v)
				}
				// Reverse into traversal order nxt ... f.c.
				for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
					cyc[i], cyc[j] = cyc[j], cyc[i]
				}
				return cyc
			}
		}
	}
	return nil
}

// Acyclic reports whether the configuration is turn-cycle-free.
func (s *System) Acyclic() bool { return s.FindTurnCycle() == nil }

// ReachableChannels returns, as a bitset indexed by channel id, every
// channel reachable from start (inclusive) by following allowed transitions.
// The DOWN/UP Phase 3 release check is built on this: a prohibited turn
// (e1 -> e2) at a node can be released iff e1 is not reachable from e2.
func (s *System) ReachableChannels(start int) []bool {
	seen := make([]bool, len(s.Dirs))
	seen[start] = true
	stack := []int{start}
	var succBuf []int
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		succBuf = s.successors(c, succBuf[:0])
		for _, nxt := range succBuf {
			if !seen[nxt] {
				seen[nxt] = true
				stack = append(stack, nxt)
			}
		}
	}
	return seen
}

// DescribeCycle renders a turn cycle found by FindTurnCycle for error
// messages and test diagnostics.
func (s *System) DescribeCycle(cycle []int) string {
	if len(cycle) == 0 {
		return "(no cycle)"
	}
	out := ""
	for i, c := range cycle {
		ch := &s.CG.Channels[c]
		if i > 0 {
			out += " -> "
		}
		out += fmt.Sprintf("<%d,%d>%s", ch.From, ch.To, s.Scheme.DirName(s.Dirs[c]))
	}
	return out
}

// Clone returns a deep copy of the system (shared CG and Dirs, copied
// masks), for tentative modifications.
func (s *System) Clone() *System {
	c := *s
	c.Allowed = append([]Mask(nil), s.Allowed...)
	return &c
}
