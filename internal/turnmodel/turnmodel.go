// Package turnmodel provides the turn-model machinery shared by every
// routing algorithm in this repository: direction schemes (mappings from
// channels to a small direction alphabet), per-node allowed-turn masks,
// direction graphs / direction dependency graphs (paper Definitions 8-10),
// and — most importantly — exact, channel-level turn-cycle detection
// (Definition 7), which is the ground truth for deadlock freedom.
//
// Paper Lemma 1 gives the easy direction (an acyclic DDG implies no turn
// cycle in the communication graph); the converse is false (the paper's own
// Figure 1(f) example), so every algorithm here is ultimately validated by
// the channel-level check in this package rather than by reasoning about
// direction graphs alone.
package turnmodel

import (
	"fmt"
	"strings"

	"repro/internal/cgraph"
)

// Dir is a direction in some scheme's alphabet (at most MaxDirs values).
type Dir = uint8

// MaxDirs bounds the size of any scheme's direction alphabet. The paper's
// complete direction graph has 8 directions; coarser schemes use fewer.
const MaxDirs = 8

// Turn is an ordered pair of distinct directions (paper Definition 6 at the
// direction-graph level): a packet arriving on a channel with direction From
// and departing on a channel with direction To makes this turn.
type Turn struct {
	From, To Dir
}

// Mask is an allowed-turn matrix over a direction alphabet: bit d2 of
// Mask[d1] is set iff the turn d1 -> d2 is allowed. By convention the
// diagonal (same-direction continuation) is always allowed — turns are only
// defined between distinct directions (Definition 8's edge set excludes
// d1 == d2) — and NewMask enforces that.
type Mask [MaxDirs]uint8

// NewMask returns a mask over numDirs directions with every turn allowed
// except those in prohibited. Prohibited pairs with From == To or with a
// direction outside the alphabet cause a panic: they indicate a bug in the
// algorithm constructing the set.
func NewMask(numDirs int, prohibited []Turn) Mask {
	if numDirs < 1 || numDirs > MaxDirs {
		panic(fmt.Sprintf("turnmodel: numDirs %d out of range", numDirs))
	}
	var m Mask
	full := uint8(1<<uint(numDirs)) - 1
	for d := 0; d < numDirs; d++ {
		m[d] = full
	}
	for _, t := range prohibited {
		if int(t.From) >= numDirs || int(t.To) >= numDirs {
			panic(fmt.Sprintf("turnmodel: turn %v outside alphabet of size %d", t, numDirs))
		}
		if t.From == t.To {
			panic(fmt.Sprintf("turnmodel: prohibited turn %v has equal directions", t))
		}
		m[t.From] &^= 1 << t.To
	}
	return m
}

// Allowed reports whether the turn d1 -> d2 is allowed.
func (m Mask) Allowed(d1, d2 Dir) bool { return m[d1]&(1<<d2) != 0 }

// Allow returns a copy of m with the turn d1 -> d2 allowed.
func (m Mask) Allow(d1, d2 Dir) Mask {
	m[d1] |= 1 << d2
	return m
}

// Forbid returns a copy of m with the turn d1 -> d2 prohibited.
func (m Mask) Forbid(d1, d2 Dir) Mask {
	m[d1] &^= 1 << d2
	return m
}

// ProhibitedTurns lists the prohibited (off-diagonal) turns of m within an
// alphabet of numDirs directions, in lexicographic order.
func (m Mask) ProhibitedTurns(numDirs int) []Turn {
	var ts []Turn
	for d1 := 0; d1 < numDirs; d1++ {
		for d2 := 0; d2 < numDirs; d2++ {
			if d1 != d2 && !m.Allowed(Dir(d1), Dir(d2)) {
				ts = append(ts, Turn{Dir(d1), Dir(d2)})
			}
		}
	}
	return ts
}

// Scheme maps the channels of a communication graph onto a direction
// alphabet. The canonical scheme is the paper's eight-direction Definition 5
// classification; coarser schemes implement the baselines.
type Scheme interface {
	// Name identifies the scheme (used in diagnostics and reports).
	Name() string
	// NumDirs is the alphabet size.
	NumDirs() int
	// DirName names a direction for diagnostics.
	DirName(d Dir) string
	// ChannelDir returns the direction of channel c under this scheme.
	ChannelDir(cg *cgraph.CG, c int) Dir
}

// AssignDirs evaluates the scheme on every channel of cg.
func AssignDirs(cg *cgraph.CG, s Scheme) []Dir {
	dirs := make([]Dir, cg.NumChannels())
	for c := range dirs {
		dirs[c] = s.ChannelDir(cg, c)
	}
	return dirs
}

// EightDir is the paper's Definition 5 scheme: tree channels are LU_TREE or
// RD_TREE; cross channels take one of the six geometric cross directions.
// Direction values coincide with cgraph.Direction.
type EightDir struct{}

// Name implements Scheme.
func (EightDir) Name() string { return "8dir" }

// NumDirs implements Scheme.
func (EightDir) NumDirs() int { return 8 }

// DirName implements Scheme.
func (EightDir) DirName(d Dir) string { return cgraph.Direction(d).String() }

// ChannelDir implements Scheme.
func (EightDir) ChannelDir(cg *cgraph.CG, c int) Dir { return Dir(cg.Channels[c].Dir) }

// Six-direction alphabet used by the reconstructed L-turn baseline: the
// L-R tree view in which "the tree links and the cross links are considered
// as the same type of links" (paper §1), leaving the six geometric
// directions of Definition 4.
const (
	SixLU Dir = iota
	SixRU
	SixL
	SixR
	SixLD
	SixRD
)

// SixDir folds the eight-direction scheme by erasing the tree/cross
// distinction: LU_TREE and LU_CROSS become LU; RD_TREE and RD_CROSS become
// RD.
type SixDir struct{}

// Name implements Scheme.
func (SixDir) Name() string { return "6dir" }

// NumDirs implements Scheme.
func (SixDir) NumDirs() int { return 6 }

// DirName implements Scheme.
func (SixDir) DirName(d Dir) string {
	switch d {
	case SixLU:
		return "LU"
	case SixRU:
		return "RU"
	case SixL:
		return "L"
	case SixR:
		return "R"
	case SixLD:
		return "LD"
	case SixRD:
		return "RD"
	default:
		return fmt.Sprintf("Dir(%d)", d)
	}
}

// ChannelDir implements Scheme.
func (SixDir) ChannelDir(cg *cgraph.CG, c int) Dir {
	switch cg.Channels[c].Dir {
	case cgraph.LUTree, cgraph.LUCross:
		return SixLU
	case cgraph.RUCross:
		return SixRU
	case cgraph.LCross:
		return SixL
	case cgraph.RCross:
		return SixR
	case cgraph.LDCross:
		return SixLD
	case cgraph.RDTree, cgraph.RDCross:
		return SixRD
	default:
		panic("turnmodel: unhandled direction")
	}
}

// Two-direction alphabet used by the classic up*/down* baseline.
const (
	UDUp Dir = iota
	UDDown
)

// UpDownDir is the classic up*/down* channel assignment (Schroeder et al.,
// Autonet): a channel is "up" if it goes to a node at a lower BFS level, or
// to the same level with a smaller node id; otherwise it is "down".
type UpDownDir struct{}

// Name implements Scheme.
func (UpDownDir) Name() string { return "updown" }

// NumDirs implements Scheme.
func (UpDownDir) NumDirs() int { return 2 }

// DirName implements Scheme.
func (UpDownDir) DirName(d Dir) string {
	if d == UDUp {
		return "UP"
	}
	return "DOWN"
}

// ChannelDir implements Scheme.
func (UpDownDir) ChannelDir(cg *cgraph.CG, c int) Dir {
	ch := &cg.Channels[c]
	t := cg.Tree
	lf, lt := t.Level[ch.From], t.Level[ch.To]
	if lt < lf || (lt == lf && ch.To < ch.From) {
		return UDUp
	}
	return UDDown
}

// PreorderUpDown assigns up/down by preorder rank alone: a channel is "up"
// iff its sink precedes its start in the tree's preorder. On a DFS spanning
// tree this is the direction assignment of the improved up*/down* routing
// of Sancho, Robles, and Duato (the paper's reference [6]); it is
// deadlock-free with the single DOWN -> UP prohibition on ANY spanning
// tree, because every channel strictly changes the preorder rank.
type PreorderUpDown struct{}

// Name implements Scheme.
func (PreorderUpDown) Name() string { return "preorder-updown" }

// NumDirs implements Scheme.
func (PreorderUpDown) NumDirs() int { return 2 }

// DirName implements Scheme.
func (PreorderUpDown) DirName(d Dir) string {
	if d == UDUp {
		return "UP"
	}
	return "DOWN"
}

// ChannelDir implements Scheme.
func (PreorderUpDown) ChannelDir(cg *cgraph.CG, c int) Dir {
	ch := &cg.Channels[c]
	if cg.Tree.X[ch.To] < cg.Tree.X[ch.From] {
		return UDUp
	}
	return UDDown
}

// FourDir is the 2D turn model's four-direction alphabet (the right/left
// routing family): horizontal channels are folded into the up/down classes
// by preorder order — a same-level channel toward a smaller X counts as
// left-up, toward a larger X as right-down — so "up" means lexicographically
// earlier in (Y, X).
type FourDir struct{}

// Four-direction alphabet.
const (
	FourLU Dir = iota
	FourRU
	FourLD
	FourRD
)

// Name implements Scheme.
func (FourDir) Name() string { return "4dir" }

// NumDirs implements Scheme.
func (FourDir) NumDirs() int { return 4 }

// DirName implements Scheme.
func (FourDir) DirName(d Dir) string {
	switch d {
	case FourLU:
		return "LU"
	case FourRU:
		return "RU"
	case FourLD:
		return "LD"
	case FourRD:
		return "RD"
	default:
		return fmt.Sprintf("Dir(%d)", d)
	}
}

// ChannelDir implements Scheme.
func (FourDir) ChannelDir(cg *cgraph.CG, c int) Dir {
	switch cg.Channels[c].Dir {
	case cgraph.LUTree, cgraph.LUCross, cgraph.LCross:
		return FourLU
	case cgraph.RUCross:
		return FourRU
	case cgraph.LDCross:
		return FourLD
	case cgraph.RDTree, cgraph.RDCross, cgraph.RCross:
		return FourRD
	default:
		panic("turnmodel: unhandled direction")
	}
}

// FormatTurns renders a turn list using a scheme's direction names.
func FormatTurns(s Scheme, ts []Turn) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = fmt.Sprintf("T(%s,%s)", s.DirName(t.From), s.DirName(t.To))
	}
	return strings.Join(parts, " ")
}
