package turnmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/cgraph"
	"repro/internal/ctree"
	"repro/internal/rng"
	"repro/internal/topology"
)

func buildCG(t *testing.T, g *topology.Graph, policy ctree.Policy) *cgraph.CG {
	t.Helper()
	tr, err := ctree.Build(g, policy, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cgraph.Build(tr)
}

// figure1CG reconstructs the paper's Figure 1 communication graph.
func figure1CG(t *testing.T) *cgraph.CG {
	t.Helper()
	g := topology.Figure1()
	parent := []int{-1, 4, 0, 0, 0, 2}
	childOrder := [][]int{{4, 2, 3}, {}, {5}, {}, {1}, {}}
	tr, err := ctree.FromParents(g, parent, childOrder)
	if err != nil {
		t.Fatal(err)
	}
	return cgraph.Build(tr)
}

func TestNewMaskBasics(t *testing.T) {
	m := NewMask(4, []Turn{{0, 1}, {2, 3}})
	if m.Allowed(0, 1) || m.Allowed(2, 3) {
		t.Fatal("prohibited turns still allowed")
	}
	if !m.Allowed(1, 0) || !m.Allowed(3, 2) || !m.Allowed(0, 2) {
		t.Fatal("unrelated turns prohibited")
	}
	for d := Dir(0); d < 4; d++ {
		if !m.Allowed(d, d) {
			t.Fatalf("diagonal %d not allowed", d)
		}
	}
}

func TestMaskAllowForbid(t *testing.T) {
	m := NewMask(3, nil)
	m2 := m.Forbid(0, 1)
	if m2.Allowed(0, 1) {
		t.Fatal("Forbid had no effect")
	}
	if !m.Allowed(0, 1) {
		t.Fatal("Forbid mutated receiver")
	}
	m3 := m2.Allow(0, 1)
	if !m3.Allowed(0, 1) {
		t.Fatal("Allow had no effect")
	}
}

func TestMaskProhibitedTurns(t *testing.T) {
	in := []Turn{{1, 0}, {0, 2}}
	m := NewMask(3, in)
	got := m.ProhibitedTurns(3)
	if len(got) != 2 {
		t.Fatalf("ProhibitedTurns = %v", got)
	}
	if got[0] != (Turn{0, 2}) || got[1] != (Turn{1, 0}) {
		t.Fatalf("ProhibitedTurns = %v", got)
	}
}

func TestNewMaskPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"zero dirs", func() { NewMask(0, nil) }},
		{"too many dirs", func() { NewMask(9, nil) }},
		{"diagonal turn", func() { NewMask(4, []Turn{{1, 1}}) }},
		{"out of alphabet", func() { NewMask(2, []Turn{{0, 3}}) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			c.fn()
		})
	}
}

func TestEightDirMatchesCGraph(t *testing.T) {
	cg := figure1CG(t)
	s := EightDir{}
	if s.NumDirs() != 8 || s.Name() != "8dir" {
		t.Fatal("EightDir metadata wrong")
	}
	for c := range cg.Channels {
		if s.ChannelDir(cg, c) != Dir(cg.Channels[c].Dir) {
			t.Fatalf("channel %d misclassified", c)
		}
	}
	if s.DirName(Dir(cgraph.LUTree)) != "LU_TREE" {
		t.Fatal("DirName wrong")
	}
}

func TestSixDirFolding(t *testing.T) {
	cg := figure1CG(t)
	s := SixDir{}
	for c := range cg.Channels {
		got := s.ChannelDir(cg, c)
		switch cg.Channels[c].Dir {
		case cgraph.LUTree, cgraph.LUCross:
			if got != SixLU {
				t.Fatalf("channel %d: %v", c, got)
			}
		case cgraph.RDTree, cgraph.RDCross:
			if got != SixRD {
				t.Fatalf("channel %d: %v", c, got)
			}
		case cgraph.RUCross:
			if got != SixRU {
				t.Fatalf("channel %d: %v", c, got)
			}
		case cgraph.LDCross:
			if got != SixLD {
				t.Fatalf("channel %d: %v", c, got)
			}
		case cgraph.LCross:
			if got != SixL {
				t.Fatalf("channel %d: %v", c, got)
			}
		case cgraph.RCross:
			if got != SixR {
				t.Fatalf("channel %d: %v", c, got)
			}
		}
	}
}

func TestUpDownDirClassic(t *testing.T) {
	// Ring(4) BFS tree from 0: levels 0,1,2,1 (0-1, 0-3 tree, 1-2 tree,
	// 2-3 cross between levels 2 and 1).
	cg := buildCG(t, topology.Ring(4), ctree.M1)
	s := UpDownDir{}
	tr := cg.Tree
	for c := range cg.Channels {
		ch := &cg.Channels[c]
		up := s.ChannelDir(cg, c) == UDUp
		lf, lt := tr.Level[ch.From], tr.Level[ch.To]
		wantUp := lt < lf || (lt == lf && ch.To < ch.From)
		if up != wantUp {
			t.Fatalf("channel <%d,%d>: up=%v want %v", ch.From, ch.To, up, wantUp)
		}
	}
	if s.DirName(UDUp) != "UP" || s.DirName(UDDown) != "DOWN" {
		t.Fatal("names wrong")
	}
}

func TestFourDirFolding(t *testing.T) {
	cg := figure1CG(t)
	s := FourDir{}
	for c := range cg.Channels {
		got := s.ChannelDir(cg, c)
		switch cg.Channels[c].Dir {
		case cgraph.LUTree, cgraph.LUCross, cgraph.LCross:
			if got != FourLU {
				t.Fatalf("channel %d: %v", c, got)
			}
		case cgraph.RDTree, cgraph.RDCross, cgraph.RCross:
			if got != FourRD {
				t.Fatalf("channel %d: %v", c, got)
			}
		case cgraph.RUCross:
			if got != FourRU {
				t.Fatalf("channel %d: %v", c, got)
			}
		case cgraph.LDCross:
			if got != FourLD {
				t.Fatalf("channel %d: %v", c, got)
			}
		}
	}
}

func TestTurnAllowedUTurns(t *testing.T) {
	cg := buildCG(t, topology.Line(3), ctree.M1)
	sys := NewSystem(cg, EightDir{}, NewMask(8, nil))
	c01, _ := cg.ChannelID(0, 1)
	c10, _ := cg.ChannelID(1, 0)
	c12, _ := cg.ChannelID(1, 2)
	if sys.TurnAllowed(c01, c10) {
		t.Fatal("U-turn allowed by default")
	}
	if !sys.TurnAllowed(c01, c12) {
		t.Fatal("straight-through transition prohibited")
	}
	sys.AllowUTurn = true
	if !sys.TurnAllowed(c01, c10) {
		t.Fatal("U-turn still prohibited with AllowUTurn")
	}
}

func TestSameDirectionAlwaysAllowed(t *testing.T) {
	// Prohibit every distinct-direction turn; a straight tree descent must
	// still be allowed (RD_TREE -> RD_TREE is not a DG edge).
	cg := buildCG(t, topology.Line(4), ctree.M1)
	var all []Turn
	for a := Dir(0); a < 8; a++ {
		for b := Dir(0); b < 8; b++ {
			if a != b {
				all = append(all, Turn{a, b})
			}
		}
	}
	sys := NewSystem(cg, EightDir{}, NewMask(8, all))
	c01, _ := cg.ChannelID(0, 1)
	c12, _ := cg.ChannelID(1, 2)
	if !sys.TurnAllowed(c01, c12) {
		t.Fatal("same-direction continuation prohibited")
	}
}

// validateCycle checks that a reported cycle really is one: consecutive
// channels chain head-to-tail, every transition is allowed, and it wraps.
func validateCycle(t *testing.T, sys *System, cyc []int) {
	t.Helper()
	if len(cyc) < 2 {
		t.Fatalf("degenerate cycle %v", cyc)
	}
	for i := range cyc {
		c1 := cyc[i]
		c2 := cyc[(i+1)%len(cyc)]
		if sys.CG.Channels[c1].To != sys.CG.Channels[c2].From {
			t.Fatalf("cycle breaks at %d: %s", i, sys.DescribeCycle(cyc))
		}
		if !sys.TurnAllowed(c1, c2) {
			t.Fatalf("cycle uses prohibited turn at %d: %s", i, sys.DescribeCycle(cyc))
		}
	}
}

func TestFindTurnCycleRing(t *testing.T) {
	cg := buildCG(t, topology.Ring(5), ctree.M1)
	sys := NewSystem(cg, EightDir{}, NewMask(8, nil))
	cyc := sys.FindTurnCycle()
	if cyc == nil {
		t.Fatal("unrestricted ring reported acyclic")
	}
	validateCycle(t, sys, cyc)
}

func TestFindTurnCycleFigure1Unrestricted(t *testing.T) {
	cg := figure1CG(t)
	sys := NewSystem(cg, EightDir{}, NewMask(8, nil))
	cyc := sys.FindTurnCycle()
	if cyc == nil {
		t.Fatal("Figure 1 CG with all turns allowed must contain the paper's turn cycle")
	}
	validateCycle(t, sys, cyc)
}

func TestTreeIsAlwaysAcyclic(t *testing.T) {
	// A tree topology has no cycles at all, so even the unrestricted
	// configuration is turn-cycle-free (U-turns being excluded).
	cg := buildCG(t, topology.CompleteBinaryTree(15), ctree.M1)
	sys := NewSystem(cg, EightDir{}, NewMask(8, nil))
	if !sys.Acyclic() {
		t.Fatal("tree topology reported cyclic")
	}
}

// TestFigure1fADDG replays the paper's Figure 1(f) observation: the ADDG
// with only the two turns T(LD_CROSS,RD_TREE) and T(RD_TREE,LD_CROSS)
// allowed contains a cycle as a direction graph, yet induces no turn cycle
// in the communication graph.
func TestFigure1fADDG(t *testing.T) {
	cg := figure1CG(t)
	var prohibited []Turn
	for a := Dir(0); a < 8; a++ {
		for b := Dir(0); b < 8; b++ {
			if a == b {
				continue
			}
			if a == Dir(cgraph.LDCross) && b == Dir(cgraph.RDTree) {
				continue
			}
			if a == Dir(cgraph.RDTree) && b == Dir(cgraph.LDCross) {
				continue
			}
			prohibited = append(prohibited, Turn{a, b})
		}
	}
	sys := NewSystem(cg, EightDir{}, NewMask(8, prohibited))
	if cyc := sys.FindTurnCycle(); cyc != nil {
		t.Fatalf("Figure 1(f) configuration has a turn cycle: %s", sys.DescribeCycle(cyc))
	}
}

func TestUpDownProhibitionsAcyclic(t *testing.T) {
	// Classic up*/down*: prohibiting the single turn DOWN->UP breaks all
	// cycles. Checked on several topologies.
	graphs := []*topology.Graph{
		topology.Ring(7),
		topology.Petersen(),
		topology.Torus2D(4, 4),
		topology.Hypercube(4),
		topology.Complete(6),
	}
	for _, g := range graphs {
		cg := buildCG(t, g, ctree.M1)
		sys := NewSystem(cg, UpDownDir{}, NewMask(2, []Turn{{UDDown, UDUp}}))
		if cyc := sys.FindTurnCycle(); cyc != nil {
			t.Fatalf("%v: up*/down* has a turn cycle: %s", g, sys.DescribeCycle(cyc))
		}
	}
}

func TestUpDownProhibitionsAcyclicRandom(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g, err := topology.RandomIrregular(topology.IrregularConfig{Switches: 40, Ports: 5}, r.Split())
		if err != nil {
			return false
		}
		tr, err := ctree.Build(g, ctree.M2, r.Split())
		if err != nil {
			return false
		}
		cg := cgraph.Build(tr)
		sys := NewSystem(cg, UpDownDir{}, NewMask(2, []Turn{{UDDown, UDUp}}))
		return sys.Acyclic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReachableChannels(t *testing.T) {
	cg := buildCG(t, topology.Line(4), ctree.M1)
	sys := NewSystem(cg, EightDir{}, NewMask(8, nil))
	c01, _ := cg.ChannelID(0, 1)
	c12, _ := cg.ChannelID(1, 2)
	c23, _ := cg.ChannelID(2, 3)
	c10, _ := cg.ChannelID(1, 0)
	seen := sys.ReachableChannels(c01)
	if !seen[c01] || !seen[c12] || !seen[c23] {
		t.Fatal("forward chain not reachable")
	}
	if seen[c10] {
		t.Fatal("reverse channel reachable despite U-turn exclusion")
	}
}

func TestCloneIsolation(t *testing.T) {
	cg := buildCG(t, topology.Ring(4), ctree.M1)
	sys := NewSystem(cg, EightDir{}, NewMask(8, nil))
	c := sys.Clone()
	c.Allowed[0] = c.Allowed[0].Forbid(0, 1)
	if !sys.Allowed[0].Allowed(0, 1) {
		t.Fatal("Clone shares mask storage")
	}
}

func TestFormatTurns(t *testing.T) {
	s := FormatTurns(UpDownDir{}, []Turn{{UDDown, UDUp}})
	if s != "T(DOWN,UP)" {
		t.Fatalf("FormatTurns = %q", s)
	}
	if FormatTurns(EightDir{}, nil) != "" {
		t.Fatal("empty list should render empty")
	}
}

func TestDescribeCycle(t *testing.T) {
	cg := buildCG(t, topology.Ring(3), ctree.M1)
	sys := NewSystem(cg, EightDir{}, NewMask(8, nil))
	if sys.DescribeCycle(nil) != "(no cycle)" {
		t.Fatal("nil cycle description wrong")
	}
	cyc := sys.FindTurnCycle()
	if cyc == nil {
		t.Fatal("triangle should have a cycle")
	}
	if sys.DescribeCycle(cyc) == "" {
		t.Fatal("empty description")
	}
}

func BenchmarkFindTurnCycle128x8(b *testing.B) {
	g, err := topology.RandomIrregular(topology.DefaultIrregular(8), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := ctree.Build(g, ctree.M1, nil)
	if err != nil {
		b.Fatal(err)
	}
	cg := cgraph.Build(tr)
	sys := NewSystem(cg, UpDownDir{}, NewMask(2, []Turn{{UDDown, UDUp}}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sys.Acyclic() {
			b.Fatal("unexpected cycle")
		}
	}
}

// TestPreorderUpDownOnStar exercises the PreorderUpDown scheme's direction
// assignment directly: channels toward smaller preorder rank are UP.
func TestPreorderUpDownOnStar(t *testing.T) {
	cg := buildCG(t, topology.Star(4), ctree.M1)
	s := PreorderUpDown{}
	for c := range cg.Channels {
		ch := &cg.Channels[c]
		up := s.ChannelDir(cg, c) == UDUp
		wantUp := cg.Tree.X[ch.To] < cg.Tree.X[ch.From]
		if up != wantUp {
			t.Fatalf("channel <%d,%d>: up=%v want %v", ch.From, ch.To, up, wantUp)
		}
	}
}
