package turnmodel

import (
	"fmt"

	"repro/internal/cgraph"
)

// This file holds the structure-aware direction schemes for the topology
// zoo (topology/zoo.go): direction alphabets that classify channels by the
// family's own coordinates (node ids, dragonfly groups, base-k digits)
// instead of by the coordinated tree. They certify with measures over the
// same coordinates, so the certifier covers them exactly like the
// tree-based schemes.

// Two-direction alphabet of the full-mesh scheme.
const (
	// MeshUp labels channels toward a smaller node id.
	MeshUp Dir = iota
	// MeshDown labels channels toward a larger node id.
	MeshDown
)

// MeshDir is the direction scheme of the VC-free full-mesh routing of Cano
// et al. (HOTI'25): with every pair of switches directly linked, a total
// order on node ids splits the channels into UP (toward a smaller id) and
// DOWN, and prohibiting DOWN -> UP leaves the minimal one-hop paths intact
// while making the channel dependency graph acyclic — no virtual channels
// needed. The scheme itself works on any graph; only the "every minimal
// path survives" property is special to the full mesh.
type MeshDir struct{}

// Name implements Scheme.
func (MeshDir) Name() string { return "mesh" }

// NumDirs implements Scheme.
func (MeshDir) NumDirs() int { return 2 }

// DirName implements Scheme.
func (MeshDir) DirName(d Dir) string {
	if d == MeshUp {
		return "UP"
	}
	return "DOWN"
}

// ChannelDir implements Scheme.
func (MeshDir) ChannelDir(cg *cgraph.CG, c int) Dir {
	ch := &cg.Channels[c]
	if ch.To < ch.From {
		return MeshUp
	}
	return MeshDown
}

// Four-direction alphabet of the circulant dateline scheme.
const (
	// CircF: forward (increasing id) step not crossing the dateline.
	CircF Dir = iota
	// CircB: backward step not crossing the dateline.
	CircB
	// CircWF: forward step wrapping past node n-1 (crossing the dateline).
	CircWF
	// CircWB: backward step wrapping past node 0.
	CircWB
)

// CirculantDir is a dateline scheme for ring-like graphs such as the
// circulant NoCs of Romanov (2019). A channel i -> j is a forward step of
// d = (j-i) mod n when d <= n/2, else a backward step of n-d; the step
// additionally crosses the "dateline" between nodes n-1 and 0 when it
// wraps. Splitting each rotational direction at the dateline is the
// classic ring deadlock-avoidance trick, recast as a turn model: the
// prohibitions of CirculantProhibited make the id a strict measure on
// every class.
type CirculantDir struct{}

// Name implements Scheme.
func (CirculantDir) Name() string { return "circulant" }

// NumDirs implements Scheme.
func (CirculantDir) NumDirs() int { return 4 }

// DirName implements Scheme.
func (CirculantDir) DirName(d Dir) string {
	switch d {
	case CircF:
		return "F"
	case CircB:
		return "B"
	case CircWF:
		return "WF"
	case CircWB:
		return "WB"
	default:
		return fmt.Sprintf("Dir(%d)", d)
	}
}

// ChannelDir implements Scheme.
func (CirculantDir) ChannelDir(cg *cgraph.CG, c int) Dir {
	ch := &cg.Channels[c]
	n := cg.Tree.G.N()
	d := ((ch.To-ch.From)%n + n) % n
	if 2*d <= n {
		if ch.From+d < n {
			return CircF
		}
		return CircWF
	}
	s := n - d
	if ch.From-s >= 0 {
		return CircB
	}
	return CircWB
}

// CirculantProhibited is the prohibited-turn set of the dateline router:
// F is entered only from injection (nothing turns into F), and WB is a
// terminal class (nothing leaves WB). The remaining classes are ordered
// F -> {B, WF, WB}, B <-> WF allowed only as B -> WF and WF -> B (both
// strictly decrease the id), B -> WB allowed. Every class is strictly
// monotone in the node id, so the certifier discharges the configuration
// with the id measure alone.
func CirculantProhibited() []Turn {
	return []Turn{
		{CircB, CircF},
		{CircWF, CircF},
		{CircWF, CircWB},
		{CircWB, CircF},
		{CircWB, CircB},
		{CircWB, CircWF},
	}
}

// Four-direction alphabet of the dragonfly scheme.
const (
	// DFLU: intra-group channel toward a smaller router id.
	DFLU Dir = iota
	// DFLD: intra-group channel toward a larger router id.
	DFLD
	// DFGU: global channel toward a smaller group id.
	DFGU
	// DFGD: global channel toward a larger group id.
	DFGD
)

// DragonflyDir classifies dragonfly channels as local (intra-group) or
// global (inter-group), each split up/down by id order — the turn-model
// reading of the l-g-l minimal routing hierarchy from the InfiniBand
// dragonfly-controller line of work (Maglione-Mathey et al.). A is the
// group size (routers per group); node v belongs to group v/A.
type DragonflyDir struct {
	// A is the number of routers per group, as passed to topology.Dragonfly.
	A int
}

// Name implements Scheme.
func (s DragonflyDir) Name() string { return fmt.Sprintf("dragonfly(a=%d)", s.A) }

// NumDirs implements Scheme.
func (DragonflyDir) NumDirs() int { return 4 }

// DirName implements Scheme.
func (DragonflyDir) DirName(d Dir) string {
	switch d {
	case DFLU:
		return "LU"
	case DFLD:
		return "LD"
	case DFGU:
		return "GU"
	case DFGD:
		return "GD"
	default:
		return fmt.Sprintf("Dir(%d)", d)
	}
}

// ChannelDir implements Scheme.
func (s DragonflyDir) ChannelDir(cg *cgraph.CG, c int) Dir {
	ch := &cg.Channels[c]
	if ch.From/s.A == ch.To/s.A {
		if ch.To < ch.From {
			return DFLU
		}
		return DFLD
	}
	if ch.To < ch.From {
		return DFGU
	}
	return DFGD
}

// DragonflyProhibited is the base prohibited-turn set of the dragonfly
// scheme: no down class (LD, GD) may turn into an up class (LU, GU). Both
// up classes strictly decrease the node id and both down classes strictly
// increase it, so the configuration certifies with the id measure — but on
// real dragonfly instances the base set disconnects some pairs (the
// up-phase cannot always reach the right global port), so the DragonflyMin
// algorithm releases prohibitions per node where the concrete channel
// dependency graph allows it.
func DragonflyProhibited() []Turn {
	return []Turn{
		{DFLD, DFLU},
		{DFLD, DFGU},
		{DFGD, DFLU},
		{DFGD, DFGU},
	}
}

// FlatButterflyDir is the dimension-order scheme for the k-ary n-flat
// flattened butterfly: channel direction 2*dim + {0 = digit decreases,
// 1 = digit increases} for the single base-k digit the channel changes.
// With the FlatButterflyProhibited turns this is plain dimension-order
// routing, whose direction dependency graph is a DAG.
type FlatButterflyDir struct {
	// K is the radix and N the dimension count, as passed to
	// topology.FlattenedButterfly. 2*N directions must fit MaxDirs.
	K, N int
}

// Name implements Scheme.
func (s FlatButterflyDir) Name() string { return fmt.Sprintf("fbfly(%d-ary %d-flat)", s.K, s.N) }

// NumDirs implements Scheme.
func (s FlatButterflyDir) NumDirs() int { return 2 * s.N }

// DirName implements Scheme.
func (s FlatButterflyDir) DirName(d Dir) string {
	sign := "-"
	if d%2 == 1 {
		sign = "+"
	}
	return fmt.Sprintf("D%d%s", d/2, sign)
}

// ChannelDir implements Scheme.
func (s FlatButterflyDir) ChannelDir(cg *cgraph.CG, c int) Dir {
	ch := &cg.Channels[c]
	stride := 1
	for dim := 0; dim < s.N; dim++ {
		df := (ch.From / stride) % s.K
		dt := (ch.To / stride) % s.K
		if df != dt {
			if dt < df {
				return Dir(2 * dim)
			}
			return Dir(2*dim + 1)
		}
		stride *= s.K
	}
	panic(fmt.Sprintf("turnmodel: channel <%d,%d> changes no base-%d digit", ch.From, ch.To, s.K))
}

// FlatButterflyProhibited is dimension-order routing as a turn set: within
// a dimension the two rotations may not reverse into each other, and no
// turn may re-enter a lower dimension. The allowed-turn DDG is a DAG
// ordered by dimension, certified by one digit measure per dimension.
func FlatButterflyProhibited(n int) []Turn {
	var ts []Turn
	for dim := 0; dim < n; dim++ {
		lo, hi := Dir(2*dim), Dir(2*dim+1)
		ts = append(ts, Turn{lo, hi}, Turn{hi, lo})
		for prev := 0; prev < dim; prev++ {
			for _, from := range []Dir{lo, hi} {
				for _, to := range []Dir{Dir(2 * prev), Dir(2*prev + 1)} {
					ts = append(ts, Turn{from, to})
				}
			}
		}
	}
	return ts
}
