package turnmodel

import (
	"testing"

	"repro/internal/cgraph"
	"repro/internal/ctree"
	"repro/internal/topology"
)

func zooCG(t *testing.T, build func() (*topology.Graph, error)) *cgraph.CG {
	t.Helper()
	g, err := build()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ctree.Build(g, ctree.M1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cgraph.Build(tr)
}

// Every zoo scheme must certify its family's uniform base configuration
// through the measure machinery, with the declared signs validated against
// a real instance of the home topology.
func TestZooSchemesCertify(t *testing.T) {
	cases := []struct {
		name       string
		cg         *cgraph.CG
		scheme     Scheme
		prohibited []Turn
	}{
		{"mesh", zooCG(t, func() (*topology.Graph, error) { return topology.FullMesh(8) }),
			MeshDir{}, []Turn{{MeshDown, MeshUp}}},
		{"circulant", zooCG(t, func() (*topology.Graph, error) { return topology.Circulant(16, 1, 4) }),
			CirculantDir{}, CirculantProhibited()},
		{"dragonfly", zooCG(t, func() (*topology.Graph, error) { return topology.Dragonfly(3, 2, 1) }),
			DragonflyDir{A: 3}, DragonflyProhibited()},
		{"fbfly", zooCG(t, func() (*topology.Graph, error) { return topology.FlattenedButterfly(3, 3) }),
			FlatButterflyDir{K: 3, N: 3}, FlatButterflyProhibited(3)},
	}
	for _, c := range cases {
		measures := MeasuresFor(c.scheme)
		if measures == nil {
			t.Fatalf("%s: no measures registered", c.name)
		}
		if err := ValidateMeasures(c.cg, c.scheme, measures); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
		mask := NewMask(c.scheme.NumDirs(), c.prohibited)
		if err := CertifyAcyclic(c.scheme.NumDirs(), mask, measures); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
		// The exact channel-level check agrees on the concrete instance.
		sys := NewSystem(c.cg, c.scheme, mask)
		if cyc := sys.FindTurnCycle(); cyc != nil {
			t.Errorf("%s: turn cycle %s", c.name, sys.DescribeCycle(cyc))
		}
	}
}

// The certifier must refuse an uncertifiable configuration: allowing every
// turn of the circulant alphabet leaves a mixed-sign SCC.
func TestZooCertifyRejectsUnrestricted(t *testing.T) {
	measures := MeasuresFor(CirculantDir{})
	mask := NewMask(4, nil)
	if err := CertifyAcyclic(4, mask, measures); err == nil {
		t.Fatal("unrestricted circulant configuration certified")
	}
}

func TestZooSchemeNamesAndDirs(t *testing.T) {
	if (MeshDir{}).Name() != "mesh" || (MeshDir{}).NumDirs() != 2 {
		t.Error("MeshDir identity changed")
	}
	if got := (MeshDir{}).DirName(MeshUp); got != "UP" {
		t.Errorf("MeshDir UP = %q", got)
	}
	if (CirculantDir{}).NumDirs() != 4 {
		t.Error("CirculantDir alphabet changed")
	}
	for d, want := range map[Dir]string{CircF: "F", CircB: "B", CircWF: "WF", CircWB: "WB"} {
		if got := (CirculantDir{}).DirName(d); got != want {
			t.Errorf("CirculantDir.DirName(%d) = %q, want %q", d, got, want)
		}
	}
	if got := (DragonflyDir{A: 4}).Name(); got != "dragonfly(a=4)" {
		t.Errorf("DragonflyDir name = %q", got)
	}
	for d, want := range map[Dir]string{DFLU: "LU", DFLD: "LD", DFGU: "GU", DFGD: "GD"} {
		if got := (DragonflyDir{A: 4}).DirName(d); got != want {
			t.Errorf("DragonflyDir.DirName(%d) = %q, want %q", d, got, want)
		}
	}
	s := FlatButterflyDir{K: 4, N: 3}
	if s.NumDirs() != 6 {
		t.Error("FlatButterflyDir alphabet size")
	}
	if got := s.DirName(4); got != "D2-" {
		t.Errorf("FlatButterflyDir.DirName(4) = %q", got)
	}
	if got := s.DirName(5); got != "D2+" {
		t.Errorf("FlatButterflyDir.DirName(5) = %q", got)
	}
}

// The circulant classification must put the two halves of a link into
// consistent classes: a channel and its reverse are never both dateline
// crossings, and forward/backward pair up with the declared id signs.
func TestCirculantDirConsistency(t *testing.T) {
	cg := zooCG(t, func() (*topology.Graph, error) { return topology.Circulant(16, 1, 4, 8) })
	scheme := CirculantDir{}
	for c := range cg.Channels {
		rev := cg.Reverse(c)
		d, dr := scheme.ChannelDir(cg, c), scheme.ChannelDir(cg, rev)
		ch := &cg.Channels[c]
		switch d {
		case CircF:
			if ch.To <= ch.From {
				t.Fatalf("F channel <%d,%d> not increasing", ch.From, ch.To)
			}
			if dr != CircB && dr != CircWF {
				t.Fatalf("reverse of F is %s", scheme.DirName(dr))
			}
		case CircB:
			if ch.To >= ch.From {
				t.Fatalf("B channel <%d,%d> not decreasing", ch.From, ch.To)
			}
		case CircWF:
			if ch.To >= ch.From {
				t.Fatalf("WF channel <%d,%d> must wrap to a smaller id", ch.From, ch.To)
			}
		case CircWB:
			if ch.To <= ch.From {
				t.Fatalf("WB channel <%d,%d> must wrap to a larger id", ch.From, ch.To)
			}
		}
	}
}
