package turnsearch

import (
	"errors"
	"fmt"

	"repro/internal/cgraph"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/wormsim"
)

// Adversary compiles a channel-dependency-cycle witness (as produced by
// turnmodel.ExistenceCheck or System.FindTurnCycle) into a concrete
// wormhole workload that forces the corresponding circular wait in a
// simulated network. It implements both sides of the simulator contract —
// routing.PathSource (fixed routes, one per packet) and wormsim.ClosedLoop
// (inject everything at cycle zero, count deliveries) — so a mask the
// static analysis rejects can be shown to deadlock a real (simulated)
// network, closing the third edge of the oracle triangle.
//
// Construction: the cycle is partitioned into contiguous arcs whose start
// nodes are pairwise distinct (an arc begins at the first cycle position
// where a node appears as a channel source). Each arc becomes one packet
// injected at the arc's start node whose route covers the arc's channels
// plus the first channel of the next arc. With one virtual channel and a
// packet long enough that its tail stays at the source, every packet ends
// up holding all of its arc's channels while requesting the next arc's
// first channel — which that arc's packet holds. All packets inject
// simultaneously from distinct sources, so each claims its own arc before
// any cross-arc request can race it, and the circular wait is inevitable
// rather than probabilistic.
type Adversary struct {
	packets   []advPacket
	bySrc     []int // node -> packet index, -1 when the node injects nothing
	handed    []bool
	delivered int
	maxRoute  int
}

// advPacket is one adversarial packet: a fixed route claimed in full.
type advPacket struct {
	src, dst int
	route    []int
}

// NewAdversary builds the deadlock workload for a dependency cycle over
// cg's channels. The cycle must be a genuine CDG cycle: consecutive
// channels (and last-to-first) head-to-tail adjacent. Turn legality is not
// re-checked here — the simulator routes whatever PathSource returns, which
// is the point: the packets take exactly the turns the mask was rejected
// for allowing.
func NewAdversary(cg *cgraph.CG, cycle []int) (*Adversary, error) {
	k := len(cycle)
	if k < 2 {
		return nil, fmt.Errorf("turnsearch: cycle witness has %d channels", k)
	}
	for i, c := range cycle {
		if c < 0 || c >= cg.NumChannels() {
			return nil, fmt.Errorf("turnsearch: cycle channel %d out of range", c)
		}
		nxt := cycle[(i+1)%k]
		if cg.Channels[c].To != cg.Channels[nxt].From {
			return nil, fmt.Errorf("turnsearch: cycle channels %d -> %d not adjacent", c, nxt)
		}
	}
	// Arc starts: first cycle position of each distinct source node.
	firstPos := make(map[int]bool, k)
	var starts []int
	for i, c := range cycle {
		from := cg.Channels[c].From
		if !firstPos[from] {
			firstPos[from] = true
			starts = append(starts, i)
		}
	}
	adv := &Adversary{bySrc: make([]int, cg.N())}
	for i := range adv.bySrc {
		adv.bySrc[i] = -1
	}
	for j, s := range starts {
		end := k // one past the arc's last cycle position
		if j+1 < len(starts) {
			end = starts[j+1]
		}
		route := append([]int(nil), cycle[s:end]...)
		// Request the next arc's first channel — the contended resource.
		nextStart := starts[(j+1)%len(starts)]
		route = append(route, cycle[nextStart])
		src := cg.Channels[cycle[s]].From
		// The simulator ejects a packet the moment its head arrives at ANY
		// switch whose id equals the destination, so the destination must
		// avoid every node the head visits while claiming the arc — or the
		// packet delivers early and the wait chain unravels. Route the
		// packet past the contended channel to the nearest node OUTSIDE
		// the visited prefix (BFS over raw channels; turn legality is
		// irrelevant to a source-routed header). The head never actually
		// gets there — it blocks on the contended channel — but the route
		// stays well-formed if it somehow advances.
		visited := map[int]bool{src: true}
		for _, c := range route[:len(route)-1] {
			visited[cg.Channels[c].To] = true
		}
		escape, dst := escapePath(cg, cg.Channels[route[len(route)-1]].To, visited)
		if dst < 0 {
			return nil, fmt.Errorf("turnsearch: arc from node %d visits every switch; no safe destination exists", src)
		}
		route = append(route, escape...)
		adv.bySrc[src] = len(adv.packets)
		adv.packets = append(adv.packets, advPacket{src: src, dst: dst, route: route})
		if len(route) > adv.maxRoute {
			adv.maxRoute = len(route)
		}
	}
	if len(adv.packets) < 2 {
		return nil, fmt.Errorf("turnsearch: cycle yields %d arcs; a circular wait needs at least 2", len(adv.packets))
	}
	adv.handed = make([]bool, len(adv.packets))
	return adv, nil
}

// escapePath finds the shortest raw-channel path from `from` to the
// nearest node outside `avoid`, returning the channel path and that node.
// If `from` itself qualifies, the path is empty. Intermediate path nodes
// are all inside `avoid` (they are strictly closer than the first node
// found outside it), which is exactly what the caller needs: the endpoint
// is the only route node that can trigger delivery. Returns dst = -1 when
// every reachable node is in `avoid`.
func escapePath(cg *cgraph.CG, from int, avoid map[int]bool) ([]int, int) {
	if !avoid[from] {
		return nil, from
	}
	parent := make(map[int]int) // node -> channel that discovered it
	queue := []int{from}
	seen := map[int]bool{from: true}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, c := range cg.Out[v] {
			to := cg.Channels[c].To
			if seen[to] {
				continue
			}
			seen[to] = true
			parent[to] = c
			if !avoid[to] {
				var rev []int
				for n := to; n != from; n = cg.Channels[parent[n]].From {
					rev = append(rev, parent[n])
				}
				path := make([]int, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					path = append(path, rev[i])
				}
				return path, to
			}
			queue = append(queue, to)
		}
	}
	return nil, -1
}

// NextPacket implements wormsim.ClosedLoop: each source hands out its one
// packet the first time it is polled (cycle zero) and nothing afterwards.
func (a *Adversary) NextPacket(node int) (dst int, tag int64, ok bool) {
	idx := a.bySrc[node]
	if idx < 0 || a.handed[idx] {
		return 0, 0, false
	}
	a.handed[idx] = true
	return a.packets[idx].dst, int64(idx), true
}

// Delivered implements wormsim.ClosedLoop.
func (a *Adversary) Delivered(tag int64, cycle int) { a.delivered++ }

// Done implements wormsim.ClosedLoop.
func (a *Adversary) Done() bool { return a.delivered == len(a.packets) }

// SamplePath implements routing.PathSource: the fixed adversarial route.
func (a *Adversary) SamplePath(src, dst int, r *rng.Rng) ([]int, error) {
	return a.FixedPath(src, dst)
}

// FixedPath implements routing.PathSource.
func (a *Adversary) FixedPath(src, dst int) ([]int, error) {
	idx := a.bySrc[src]
	if idx < 0 || a.packets[idx].dst != dst {
		return nil, fmt.Errorf("turnsearch: no adversarial route %d -> %d", src, dst)
	}
	return a.packets[idx].route, nil
}

// NextChannels implements routing.PathSource for completeness (the
// adversary always runs source-routed, so the simulator never calls it):
// it returns the single next hop along the owning packet's route.
func (a *Adversary) NextChannels(dst, state int, buf []int) []int {
	if state < 0 {
		if idx := a.bySrc[^state]; idx >= 0 && a.packets[idx].dst == dst {
			return append(buf, a.packets[idx].route[0])
		}
		return buf
	}
	for _, p := range a.packets {
		if p.dst != dst {
			continue
		}
		for i, c := range p.route {
			if c == state && i+1 < len(p.route) {
				return append(buf, p.route[i+1])
			}
		}
	}
	return buf
}

// proveCap bounds the proof simulation: injection of the longest packet
// plus the watchdog window plus slack, rounded up generously. A genuine
// circular wait freezes the network long before this.
const proveCap = 100000

// ProveDeadlock runs the adversarial workload for the given cycle witness
// against fn in wormsim and returns the online detector's structured
// diagnostic once the watchdog fires. It returns an error if the workload
// completes (or the cap is reached) without deadlocking — which would mean
// the static analysis rejected a mask the dynamic oracle cannot fault, a
// genuine three-way-oracle disagreement the caller must surface.
func ProveDeadlock(fn *routing.Function, cycle []int) (*wormsim.DeadlockInfo, error) {
	adv, err := NewAdversary(fn.CG(), cycle)
	if err != nil {
		return nil, err
	}
	cfg := wormsim.Config{
		// Long enough that every tail stays at its source while the head
		// blocks: the route's downstream buffering is BufferDepth+pipeline
		// flits per channel, far below 32 per hop.
		PacketLength:      (adv.maxRoute + 1) * 32,
		BufferDepth:       4,
		VirtualChannels:   1,
		WarmupCycles:      wormsim.NoWarmup,
		MeasureCycles:     proveCap,
		Seed:              1,
		DeadlockThreshold: 512,
		Workload:          adv,
	}
	sim, err := wormsim.New(fn, adv, cfg)
	if err != nil {
		return nil, err
	}
	for cycles := 0; cycles < proveCap; cycles += 256 {
		if err := sim.RunCycles(256); err != nil {
			var de *wormsim.DeadlockError
			if errors.As(err, &de) {
				return de.Info, nil
			}
			return nil, err
		}
		if adv.Done() {
			return nil, fmt.Errorf("turnsearch: adversarial workload for %d-channel cycle delivered all %d packets without deadlocking",
				len(cycle), len(adv.packets))
		}
	}
	return nil, fmt.Errorf("turnsearch: adversarial workload neither deadlocked nor completed within %d cycles", proveCap)
}
