package turnsearch

import (
	"errors"
	"fmt"

	"repro/internal/cgraph"
	"repro/internal/ctree"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/turnmodel"
	"repro/internal/wormsim"
)

// Verdict records what every oracle said about one (topology, scheme, mask)
// configuration. CrossValidate fails unless the answers are mutually
// consistent, so a returned Verdict is always a point of agreement.
type Verdict struct {
	// DeadlockFree is the shared answer of the two exact static deciders
	// (Kahn peeling and colored DFS — they must agree).
	DeadlockFree bool
	// Connected is ExistenceCheck's all-pairs legal-path answer.
	Connected bool
	// CertifierPassed reports whether the topology-independent
	// stratification certificate (turnmodel.CertifyAcyclic) proved the
	// mask. The certifier is sufficient-only: pass implies DeadlockFree on
	// every topology (checked), but failure implies nothing.
	CertifierPassed bool
	// Simulated reports whether the wormsim oracle ran for this case.
	Simulated bool
	// Deadlock is the dynamic witness when Simulated && !DeadlockFree: the
	// circular wait the adversarial workload forced in the simulator.
	Deadlock *wormsim.DeadlockInfo
}

// CrossValidate checks one configuration against every oracle that applies
// and errors on any disagreement:
//
//   - Kahn peeling (turnmodel.ExistenceCheck) vs colored DFS
//     (System.FindTurnCycle): exact deciders, must agree outright, and the
//     existence witness must survive VerifyWitness.
//   - Stratification certificate (turnmodel.CertifyAcyclic): sufficient
//     only — a certified mask must be deadlock-free here (one direction).
//   - wormsim (when simulate is set): a deadlock-free connected mask must
//     run an open-loop traffic sample without tripping the watchdog; a
//     cyclic mask must demonstrably deadlock under the Adversary compiled
//     from its cycle witness, caught by the online wait-for-graph
//     detector.
func CrossValidate(cg *cgraph.CG, scheme turnmodel.Scheme, mask turnmodel.Mask, simulate bool) (*Verdict, error) {
	sys := turnmodel.NewSystem(cg, scheme, mask)
	ec := turnmodel.ExistenceCheck(sys)
	if err := ec.VerifyWitness(sys); err != nil {
		return nil, fmt.Errorf("turnsearch: existence witness rejected: %w", err)
	}
	dfsCycle := sys.FindTurnCycle()
	if (dfsCycle == nil) != ec.DeadlockFree {
		return nil, fmt.Errorf("turnsearch: exact deciders disagree: Kahn deadlock-free=%v, DFS cycle=%v",
			ec.DeadlockFree, dfsCycle != nil)
	}
	v := &Verdict{DeadlockFree: ec.DeadlockFree, Connected: ec.Connected}

	if measures := turnmodel.MeasuresFor(scheme); measures != nil {
		if err := turnmodel.ValidateMeasures(cg, scheme, measures); err != nil {
			return nil, err
		}
		if turnmodel.CertifyAcyclic(scheme.NumDirs(), mask, measures) == nil {
			v.CertifierPassed = true
			if !ec.DeadlockFree {
				return nil, fmt.Errorf("turnsearch: certifier proved a mask the exact check rejects (cycle %v)", ec.Cycle)
			}
		}
	}

	if !simulate {
		return v, nil
	}
	fn := routing.FromMask(cg, scheme, mask, "")
	if ec.DeadlockFree && ec.Connected {
		v.Simulated = true
		if err := simulateClean(fn); err != nil {
			return nil, fmt.Errorf("turnsearch: statically deadlock-free mask failed in wormsim: %w", err)
		}
		return v, nil
	}
	if !ec.DeadlockFree {
		v.Simulated = true
		info, err := ProveDeadlock(fn, ec.Cycle)
		if err != nil {
			return nil, err
		}
		v.Deadlock = info
	}
	// Cyclic or disconnected masks with no cycle to compile (disconnected
	// only): nothing further to simulate — open-loop traffic would sample
	// unroutable pairs.
	return v, nil
}

// simulateClean runs a short open-loop uniform-traffic sample and requires
// it to finish without the watchdog firing. Deliberately modest load and
// length: the point is the absence of deadlock under a verified-acyclic
// mask, not a performance measurement.
func simulateClean(fn *routing.Function) error {
	tb := routing.NewTable(fn)
	res, err := wormsim.New(fn, tb, wormsim.Config{
		PacketLength:  16,
		InjectionRate: 0.08,
		WarmupCycles:  wormsim.NoWarmup,
		MeasureCycles: 3000,
		Seed:          7,
	})
	if err != nil {
		return err
	}
	_, err = res.Run()
	var de *wormsim.DeadlockError
	if errors.As(err, &de) {
		return err
	}
	// Livelock or other errors would also be disagreements worth failing
	// on; a nil error is the expected outcome.
	return err
}

// DifferentialOptions configures a Differential sweep.
type DifferentialOptions struct {
	// Cases is the number of random configurations (default 500).
	Cases int
	// Switches and Ports shape the random topologies (defaults 24, 4 —
	// small enough that hundreds of cases stay fast, large enough for
	// nontrivial cross-link structure).
	Switches, Ports int
	// Seed drives topology and mask randomness (default 1).
	Seed uint64
	// SimulateEvery runs the wormsim oracle on every k-th case (0 = never,
	// 1 = all). Simulation is the expensive edge of the triangle; the
	// static deciders always run.
	SimulateEvery int
	// Schemes cycles through direction alphabets (default eight-direction,
	// six-direction, up/down).
	Schemes []turnmodel.Scheme
}

func (o DifferentialOptions) withDefaults() DifferentialOptions {
	if o.Cases == 0 {
		o.Cases = 500
	}
	if o.Switches == 0 {
		o.Switches = 24
	}
	if o.Ports == 0 {
		o.Ports = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Schemes) == 0 {
		o.Schemes = []turnmodel.Scheme{turnmodel.EightDir{}, turnmodel.SixDir{}, turnmodel.UpDownDir{}}
	}
	return o
}

// DifferentialReport summarizes an agreement sweep.
type DifferentialReport struct {
	// Cases is the number of configurations checked.
	Cases int
	// DeadlockFree, Connected, CertifierPassed, Simulated, and
	// ProvedDeadlocks count the corresponding Verdict outcomes; the mix
	// shows the sweep exercised both sides of every oracle edge.
	DeadlockFree, Connected, CertifierPassed, Simulated, ProvedDeadlocks int
}

// String renders the report one line at a time for logs and CI output.
func (r *DifferentialReport) String() string {
	return fmt.Sprintf("differential: %d cases, %d deadlock-free, %d connected, %d certified, %d simulated, %d proved deadlocks, 0 disagreements",
		r.Cases, r.DeadlockFree, r.Connected, r.CertifierPassed, r.Simulated, r.ProvedDeadlocks)
}

// Differential cross-validates a deterministic matrix of random topologies
// × random masks × schemes and returns the aggregate, erroring on the
// first oracle disagreement. Mask density sweeps from nearly-all-prohibited
// to nearly-all-allowed across the matrix so both verdicts appear in bulk;
// the two degenerate masks (everything prohibited: always deadlock-free;
// everything allowed: cyclic on any cyclic topology) are pinned as the
// first two cases of every scheme.
func Differential(opts DifferentialOptions) (*DifferentialReport, error) {
	opts = opts.withDefaults()
	rep := &DifferentialReport{}
	policies := []ctree.Policy{ctree.M1, ctree.M2, ctree.M3}
	for i := 0; i < opts.Cases; i++ {
		r := rng.New(opts.Seed ^ (uint64(i+1) * 0x9E3779B97F4A7C15))
		g, err := topology.RandomIrregular(topology.IrregularConfig{
			Switches: opts.Switches, Ports: opts.Ports, Fill: 0.4 + 0.6*r.Float64(),
		}, r)
		if err != nil {
			return nil, err
		}
		pol := policies[i%len(policies)]
		t, err := ctree.Build(g, pol, r)
		if err != nil {
			return nil, err
		}
		cg := cgraph.Build(t)
		scheme := opts.Schemes[i%len(opts.Schemes)]
		all := turnmodel.AllTurns(scheme)
		var prohibited []turnmodel.Turn
		switch i / len(opts.Schemes) {
		case 0: // everything prohibited — deadlock-free on any topology
			prohibited = all
		case 1: // everything allowed — cyclic whenever the topology cycles
			prohibited = nil
		default:
			density := float64(i%97) / 96.0
			for _, t := range all {
				if r.Float64() < density {
					prohibited = append(prohibited, t)
				}
			}
		}
		mask := turnmodel.NewMask(scheme.NumDirs(), prohibited)
		simulate := opts.SimulateEvery > 0 && i%opts.SimulateEvery == 0
		v, err := CrossValidate(cg, scheme, mask, simulate)
		if err != nil {
			return nil, fmt.Errorf("case %d (scheme %s, %d prohibited): %w", i, scheme.Name(), len(prohibited), err)
		}
		rep.Cases++
		if v.DeadlockFree {
			rep.DeadlockFree++
		}
		if v.Connected {
			rep.Connected++
		}
		if v.CertifierPassed {
			rep.CertifierPassed++
		}
		if v.Simulated {
			rep.Simulated++
		}
		if v.Deadlock != nil {
			rep.ProvedDeadlocks++
		}
	}
	return rep, nil
}
