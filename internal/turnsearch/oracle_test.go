package turnsearch

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/turnmodel"
)

// TestAdversaryProvesDeadlock compiles the cycle witness of the
// all-allowed mask into packets and requires the simulator's online
// detector to find a circular wait.
func TestAdversaryProvesDeadlock(t *testing.T) {
	cg := searchCG(t, 2, 16, 4)
	scheme := turnmodel.EightDir{}
	mask := turnmodel.NewMask(scheme.NumDirs(), nil)
	sys := turnmodel.NewSystem(cg, scheme, mask)
	ec := turnmodel.ExistenceCheck(sys)
	if ec.DeadlockFree {
		t.Fatal("all-allowed mask unexpectedly deadlock-free")
	}
	fn := routing.FromMask(cg, scheme, mask, "")
	info, err := ProveDeadlock(fn, ec.Cycle)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Cycle) < 2 {
		t.Fatalf("deadlock diagnostic has no circular wait: %+v", info)
	}
	if info.FrozenFlits == 0 {
		t.Fatal("deadlock with no frozen flits")
	}
}

// TestAdversaryRejectsBadWitness pins the constructor's validation.
func TestAdversaryRejectsBadWitness(t *testing.T) {
	cg := searchCG(t, 2, 12, 4)
	if _, err := NewAdversary(cg, []int{0}); err == nil {
		t.Fatal("accepted a one-channel cycle")
	}
	if _, err := NewAdversary(cg, []int{0, 0}); err == nil {
		t.Fatal("accepted a non-adjacent cycle")
	}
	if _, err := NewAdversary(cg, []int{-1, 5}); err == nil {
		t.Fatal("accepted an out-of-range channel")
	}
}

// TestCrossValidateKnownMasks runs the full triangle — both static
// deciders, the certificate, and the simulator — over the repository's
// proved turn sets and the two degenerate masks.
func TestCrossValidateKnownMasks(t *testing.T) {
	cg := searchCG(t, 6, 20, 4)
	eight := turnmodel.EightDir{}
	six := turnmodel.SixDir{}
	cases := []struct {
		name       string
		scheme     turnmodel.Scheme
		prohibited []turnmodel.Turn
		wantFree   bool
		wantCert   bool
	}{
		{"downup-base", eight, core.ProhibitedTurns(), true, true},
		{"l-turn", six, routing.LTurnProhibited, true, true},
		{"all-allowed", eight, nil, false, false},
		{"all-prohibited", eight, turnmodel.AllTurns(eight), true, true},
	}
	for _, tc := range cases {
		mask := turnmodel.NewMask(tc.scheme.NumDirs(), tc.prohibited)
		v, err := CrossValidate(cg, tc.scheme, mask, true)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if v.DeadlockFree != tc.wantFree {
			t.Fatalf("%s: deadlock-free=%v, want %v", tc.name, v.DeadlockFree, tc.wantFree)
		}
		if v.CertifierPassed != tc.wantCert {
			t.Fatalf("%s: certified=%v, want %v", tc.name, v.CertifierPassed, tc.wantCert)
		}
		if !tc.wantFree && v.Deadlock == nil {
			t.Fatalf("%s: cyclic mask produced no simulated deadlock", tc.name)
		}
	}
}

// TestDifferentialMatrix is the acceptance-criterion sweep: at least 500
// random (topology, scheme, mask) cases with zero oracle disagreements,
// simulating every eighth case so both wormsim edges (clean run, forced
// deadlock) appear in bulk. The CI turnsearch-smoke job runs the same
// sweep through the test binary.
func TestDifferentialMatrix(t *testing.T) {
	cases := 500
	simEvery := 8
	if testing.Short() {
		cases, simEvery = 120, 12
	}
	rep, err := Differential(DifferentialOptions{Cases: cases, SimulateEvery: simEvery})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cases < cases {
		t.Fatalf("ran %d cases, want >= %d", rep.Cases, cases)
	}
	if rep.DeadlockFree == 0 || rep.DeadlockFree == rep.Cases {
		t.Fatalf("one-sided sweep: %d/%d deadlock-free", rep.DeadlockFree, rep.Cases)
	}
	if rep.Simulated == 0 || rep.ProvedDeadlocks == 0 {
		t.Fatalf("simulation edge not exercised: %d simulated, %d proved deadlocks",
			rep.Simulated, rep.ProvedDeadlocks)
	}
	if !strings.Contains(rep.String(), "0 disagreements") {
		t.Fatalf("report: %s", rep)
	}
}
