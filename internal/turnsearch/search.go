package turnsearch

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cgraph"
	"repro/internal/rng"
	"repro/internal/turnmodel"
)

// Search minimizes the uniform prohibited-turn mask for cg under the exact
// deadlock-freedom and connectivity conditions. See the package comment for
// the algorithm; the guarantees are:
//
//   - Determinism: equal (cg, Options modulo Workers) give equal Results.
//   - Exactness: every candidate turn is admitted or rejected by the
//     channel-level dependency check on cg itself, decided independently
//     by colored DFS and Kahn peeling (disagreement is an error).
//   - Minimality: each candidate's prohibited set is subset-minimal —
//     re-allowing any single prohibited turn creates a dependency cycle.
//
// The error return is reserved for oracle disagreement and witness
// failures; an unlucky search that finds no connected mask returns a
// Result with Best == nil and no error.
func Search(cg *cgraph.CG, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{Candidates: make([]Candidate, opts.Restarts)}
	evals := make([]int, opts.Restarts)
	errs := make([]error, opts.Restarts)

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Restarts {
		workers = opts.Restarts
	}
	// Static restart striding: worker w owns restarts w, w+workers, ... —
	// no shared mutable state, so the assignment cannot affect results.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < opts.Restarts; i += workers {
				cand, n, err := restart(cg, opts, i)
				res.Candidates[i], evals[i], errs[i] = cand, n, err
			}
		}(w)
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i := range res.Candidates {
		res.Evaluations += evals[i]
		c := &res.Candidates[i]
		if !c.Connected {
			continue
		}
		switch {
		case res.Best == nil,
			len(c.Prohibited) < len(res.Best.Prohibited),
			len(c.Prohibited) == len(res.Best.Prohibited) &&
				lessTurns(c.Prohibited, res.Best.Prohibited):
			res.Best = c
		}
	}
	return res, nil
}

// restart runs one greedy restoration pass and the full existence check on
// its maximal mask.
func restart(cg *cgraph.CG, opts Options, i int) (Candidate, int, error) {
	order := restartOrder(opts, i)
	allTurns := turnmodel.AllTurns(opts.Scheme)
	sys := turnmodel.NewSystem(cg, opts.Scheme, turnmodel.NewMask(opts.Scheme.NumDirs(), allTurns))
	evals := 0
	for _, t := range order {
		for v := range sys.Allowed {
			sys.Allowed[v] = sys.Allowed[v].Allow(t.From, t.To)
		}
		dfsFree := sys.Acyclic()
		kahnFree := turnmodel.CheckAcyclicOnly(sys).DeadlockFree
		evals++
		if dfsFree != kahnFree {
			return Candidate{}, evals, fmt.Errorf(
				"turnsearch: oracle disagreement on restart %d turn %s>%s: DFS says acyclic=%v, Kahn says acyclic=%v",
				i, opts.Scheme.DirName(t.From), opts.Scheme.DirName(t.To), dfsFree, kahnFree)
		}
		if !dfsFree {
			for v := range sys.Allowed {
				sys.Allowed[v] = sys.Allowed[v].Forbid(t.From, t.To)
			}
		}
	}
	cand := Candidate{
		Restart:    i,
		Mask:       sys.Allowed[0],
		Prohibited: sys.Allowed[0].ProhibitedTurns(opts.Scheme.NumDirs()),
	}
	sortTurns(cand.Prohibited)
	final := turnmodel.ExistenceCheck(sys)
	if !final.DeadlockFree {
		return Candidate{}, evals, fmt.Errorf(
			"turnsearch: restart %d final mask fails the existence check its candidates passed", i)
	}
	if err := final.VerifyWitness(sys); err != nil {
		return Candidate{}, evals, fmt.Errorf("turnsearch: restart %d witness: %w", i, err)
	}
	cand.Connected = final.Connected
	return cand, evals, nil
}

// restartOrder returns restart i's turn-restoration preference: the
// down-first order for restart 0 on the eight-direction scheme (the
// paper's Phase 2 philosophy, so the deterministic pass lands near the
// hand-derived design), the plain lexicographic order for restart 0 on
// other schemes, and a seeded shuffle otherwise.
func restartOrder(opts Options, i int) []turnmodel.Turn {
	if i == 0 {
		if _, ok := opts.Scheme.(turnmodel.EightDir); ok {
			return turnmodel.DownFirstPreference()
		}
		return turnmodel.AllTurns(opts.Scheme)
	}
	order := turnmodel.AllTurns(opts.Scheme)
	r := rng.New(opts.Seed ^ (uint64(i) * 0x9E3779B97F4A7C15))
	r.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
	return order
}
