package turnsearch

import (
	"reflect"
	"testing"

	"repro/internal/cgraph"
	"repro/internal/ctree"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/turnmodel"
)

func searchCG(tb testing.TB, seed uint64, switches, ports int) *cgraph.CG {
	tb.Helper()
	g, err := topology.RandomIrregular(topology.IrregularConfig{Switches: switches, Ports: ports}, rng.New(seed))
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := ctree.Build(g, ctree.M1, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return cgraph.Build(tr)
}

// TestSearchWorkerInvariance is the PR 6 Workers contract applied to the
// search: the full Result — every candidate, the winner, the evaluation
// count — must be identical at every worker count.
func TestSearchWorkerInvariance(t *testing.T) {
	cg := searchCG(t, 1, 32, 4)
	opts := Options{Restarts: 9, Seed: 5}
	var base *Result
	for _, workers := range []int{1, 2, 4, 8} {
		opts.Workers = workers
		res, err := Search(cg, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("workers=%d: result differs from workers=1", workers)
		}
	}
	if base.Best == nil {
		t.Fatal("search found no connected mask")
	}
}

// TestSearchSubsetMinimal is the minimality property the greedy
// construction promises: re-allowing any single prohibited turn of any
// candidate must create a dependency cycle (checked by both exact
// deciders), i.e. no candidate's prohibited set has a legal proper subset
// missing just one element.
func TestSearchSubsetMinimal(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		cg := searchCG(t, uint64(trial+2), 16+trial*6, 4)
		res, err := Search(cg, Options{Restarts: 5, Seed: uint64(trial + 1)})
		if err != nil {
			t.Fatal(err)
		}
		for _, cand := range res.Candidates {
			sys := turnmodel.NewSystem(cg, turnmodel.EightDir{}, cand.Mask)
			if !sys.Acyclic() {
				t.Fatalf("trial %d restart %d: candidate mask not acyclic", trial, cand.Restart)
			}
			for _, pt := range cand.Prohibited {
				relaxed := turnmodel.NewSystem(cg, turnmodel.EightDir{}, cand.Mask.Allow(pt.From, pt.To))
				dfs := relaxed.Acyclic()
				kahn := turnmodel.CheckAcyclicOnly(relaxed).DeadlockFree
				if dfs != kahn {
					t.Fatalf("trial %d: decider disagreement relaxing %v", trial, pt)
				}
				if dfs {
					t.Fatalf("trial %d restart %d: prohibited turn %s>%s can be allowed — set not subset-minimal",
						trial, cand.Restart, turnmodel.EightDir{}.DirName(pt.From), turnmodel.EightDir{}.DirName(pt.To))
				}
			}
		}
	}
}

// TestSearchDeterministic pins byte determinism: two runs with equal
// options produce deeply equal results.
func TestSearchDeterministic(t *testing.T) {
	cg := searchCG(t, 3, 24, 4)
	a, err := Search(cg, Options{Restarts: 6, Seed: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(cg, Options{Restarts: 6, Seed: 2, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identically-seeded searches differ")
	}
}

// TestSearchBeatsPaperSet is the headline acceptance property: at the
// paper's own scale (128 switches) the searched per-topology prohibited
// set must be strictly smaller than the paper's hand-derived 18 turns,
// on both port counts.
func TestSearchBeatsPaperSet(t *testing.T) {
	for _, ports := range []int{4, 8} {
		cg := searchCG(t, 1, 128, ports)
		res, err := Search(cg, Options{Restarts: 8, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best == nil {
			t.Fatalf("ports=%d: no connected mask found", ports)
		}
		if got := len(res.Best.Prohibited); got >= 18 {
			t.Fatalf("ports=%d: minimal prohibited set has %d turns, want < 18 (paper's hand-derived set)", ports, got)
		}
		// The winner must hold up under the full existence check.
		ec := turnmodel.ExistenceCheck(turnmodel.NewSystem(cg, turnmodel.EightDir{}, res.Best.Mask))
		if !ec.Exists() {
			t.Fatalf("ports=%d: winning mask fails the existence check", ports)
		}
	}
}

// TestSearchSixDir exercises the non-default scheme path (restart 0 falls
// back to the lexicographic order).
func TestSearchSixDir(t *testing.T) {
	cg := searchCG(t, 4, 24, 4)
	res, err := Search(cg, Options{Scheme: turnmodel.SixDir{}, Restarts: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("six-direction search found no connected mask")
	}
	if got, bound := len(res.Best.Prohibited), len(turnmodel.AllTurns(turnmodel.SixDir{})); got >= bound {
		t.Fatalf("six-direction search prohibited everything (%d of %d)", got, bound)
	}
}
