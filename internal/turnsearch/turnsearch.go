// Package turnsearch finds minimal prohibited-turn sets automatically. The
// paper hand-derives one set of 18 prohibited turns for the eight-direction
// alphabet and proves it deadlock-free once, for every topology; this
// package inverts the exercise. Given a concrete communication graph it
// searches the space of uniform turn masks for one that is deadlock-free
// AND fully connected on that graph while prohibiting as few turns as
// possible — trading the paper's universal proof for per-topology
// optimality, with turnmodel.ExistenceCheck (the necessary-and-sufficient
// condition on the channel dependency graph) as the exact per-candidate
// gate.
//
// The engine is greedy turn restoration: start from the everything-
// prohibited mask (only same-direction continuations allowed, acyclic for
// every scheme in this repository) and restore turns one at a time in a
// preference order, keeping each turn iff the channel dependency graph
// stays acyclic. The result is a maximal allowed set, so its complement is
// a subset-minimal prohibited set: a rejected turn created a cycle against
// a subset of the final allowed turns, and cycles never disappear as more
// turns are allowed. Restart 0 uses the paper-flavoured down-first
// preference; further restarts shuffle the order with seeded RNG streams
// and run in parallel across a worker pool, with the winner picked by a
// deterministic total order (fewest prohibitions, then lexicographic turn
// list, then restart index) so results never depend on scheduling.
//
// Every candidate is checked by two algorithmically independent exact
// deciders — the colored-DFS cycle finder (System.FindTurnCycle) and the
// Kahn peeling (turnmodel.CheckAcyclicOnly) — and any disagreement aborts
// the search: the search doubles as a continuous differential test of the
// deadlock-freedom machinery. The third oracle, wormsim's online wait-for-
// graph detector, closes the triangle in this package's Adversary: a mask
// rejected for a dependency cycle is compiled into a concrete workload
// that provably deadlocks a simulated network (see adversary.go and
// oracle.go).
package turnsearch

import (
	"fmt"
	"sort"

	"repro/internal/turnmodel"
)

// Options configures a Search run.
type Options struct {
	// Scheme is the direction alphabet to search over (default
	// turnmodel.EightDir).
	Scheme turnmodel.Scheme
	// Restarts is the number of greedy passes: restart 0 uses the
	// deterministic down-first preference order, restarts 1..Restarts-1
	// use seeded shuffles of the full turn list (default 16).
	Restarts int
	// Seed drives the shuffled restarts (default 1). Two runs with equal
	// Options are byte-identical regardless of Workers.
	Seed uint64
	// Workers bounds the parallel candidate evaluation; 0 means
	// GOMAXPROCS. Results never depend on it (PR 6's Workers contract).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Scheme == nil {
		o.Scheme = turnmodel.EightDir{}
	}
	if o.Restarts == 0 {
		o.Restarts = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Candidate is the outcome of one greedy restart: a maximal allowed mask
// and the verdict of the full existence check on it.
type Candidate struct {
	// Restart is the pass index that produced this candidate (0 =
	// down-first preference, >0 = seeded shuffle).
	Restart int
	// Mask is the uniform allowed-turn mask (maximal: no single further
	// turn can be allowed without creating a dependency cycle).
	Mask turnmodel.Mask
	// Prohibited lists the prohibited distinct-direction turns, sorted by
	// (From, To). len(Prohibited) is the quantity the search minimizes.
	Prohibited []turnmodel.Turn
	// Connected reports whether the mask routes every ordered node pair.
	// A maximal-but-disconnected candidate is legal output of a restart
	// but never wins.
	Connected bool
}

// Result is the outcome of a Search: every restart's candidate plus the
// deterministic winner.
type Result struct {
	// Best is the winning candidate: connected, fewest prohibited turns,
	// ties broken by lexicographic turn list then restart index. Nil iff
	// no restart produced a connected mask.
	Best *Candidate
	// Candidates holds one entry per restart, indexed by restart.
	Candidates []Candidate
	// Evaluations counts exact acyclicity decisions performed (two
	// independent algorithms each, per candidate turn).
	Evaluations int
}

// sortTurns orders a turn list by (From, To), the canonical rendering.
func sortTurns(ts []turnmodel.Turn) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].From != ts[j].From {
			return ts[i].From < ts[j].From
		}
		return ts[i].To < ts[j].To
	})
}

// lessTurns is the lexicographic order on sorted turn lists used for
// deterministic tie-breaking between equally small candidates.
func lessTurns(a, b []turnmodel.Turn) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i].From != b[i].From {
				return a[i].From < b[i].From
			}
			return a[i].To < b[i].To
		}
	}
	return len(a) < len(b)
}

// FormatTurns renders a sorted turn list in the scheme's direction names,
// e.g. "LD>LU LD>RU".
func FormatTurns(scheme turnmodel.Scheme, ts []turnmodel.Turn) string {
	s := ""
	for i, t := range ts {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s>%s", scheme.DirName(t.From), scheme.DirName(t.To))
	}
	return s
}
