package workload

// The closed-loop scheduler: Engine walks a DAG through wormsim's
// ClosedLoop interface. All state is sized at construction — per-node
// ready rings have capacity for every message sourced at that node, and
// the dependents adjacency is a prebuilt CSR — so the per-cycle poll and
// the delivery hook allocate nothing, preserving the event engine's
// steady-state zero-allocation guarantee (see wormsim's
// TestSteadyStateAllocs).

import (
	"fmt"

	"repro/internal/routing"
	"repro/internal/wormsim"
)

// Engine schedules one DAG as a wormsim closed-loop source. It implements
// wormsim.ClosedLoop; packet tags are message indices. An Engine is
// single-use: it tracks delivery state destructively and cannot be rewound.
type Engine struct {
	dag *DAG

	remDeps []int32 // undelivered dependencies per message
	remPkts []int32 // undelivered packets per message
	sent    []int32 // packets handed to the simulator per message

	// ready[v] is a fixed-capacity ring of eligible message ids sourced at
	// node v; a message stays at the head until all its packets are sent.
	ready [][]int32
	rhead []int
	rsize []int

	// Dependents in CSR form: messages depending on m are
	// depList[depStart[m]:depStart[m+1]].
	depStart []int32
	depList  []int32

	eligibleAt  []int32 // cycle each message became eligible (roots: 0)
	deliveredAt []int32 // cycle each message fully delivered (-1 until then)
	stepRem     []int32 // undelivered messages per step
	stepDone    []int32 // completion cycle per step (-1 until done)

	delivered int // fully delivered messages
	makespan  int // cycle of the last packet delivery
}

// NewEngine validates the DAG against an n-node topology and builds the
// scheduler with every root message already eligible.
func NewEngine(dag *DAG, n int) (*Engine, error) {
	if len(dag.Messages) == 0 {
		return nil, fmt.Errorf("workload: empty DAG %q", dag.Name)
	}
	if err := dag.Validate(n); err != nil {
		return nil, err
	}
	nm := len(dag.Messages)
	e := &Engine{
		dag:         dag,
		remDeps:     make([]int32, nm),
		remPkts:     make([]int32, nm),
		sent:        make([]int32, nm),
		ready:       make([][]int32, n),
		rhead:       make([]int, n),
		rsize:       make([]int, n),
		depStart:    make([]int32, nm+1),
		eligibleAt:  make([]int32, nm),
		deliveredAt: make([]int32, nm),
		stepRem:     make([]int32, dag.Steps()),
		stepDone:    make([]int32, dag.Steps()),
	}
	perNode := make([]int, n)
	for i := range dag.Messages {
		m := &dag.Messages[i]
		e.remDeps[i] = int32(len(m.Deps))
		e.remPkts[i] = int32(m.Packets)
		e.deliveredAt[i] = -1
		e.stepRem[m.Step]++
		perNode[m.Src]++
		for _, dep := range m.Deps {
			e.depStart[dep+1]++
		}
	}
	for s := range e.stepDone {
		e.stepDone[s] = -1
	}
	for i := 0; i < nm; i++ {
		e.depStart[i+1] += e.depStart[i]
	}
	e.depList = make([]int32, e.depStart[nm])
	fill := make([]int32, nm)
	for i := range dag.Messages {
		for _, dep := range dag.Messages[i].Deps {
			e.depList[e.depStart[dep]+fill[dep]] = int32(i)
			fill[dep]++
		}
	}
	for v := 0; v < n; v++ {
		e.ready[v] = make([]int32, maxInt(perNode[v], 1))
	}
	for i := range dag.Messages {
		if e.remDeps[i] == 0 {
			e.push(int32(i))
		}
	}
	return e, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (e *Engine) push(m int32) {
	v := e.dag.Messages[m].Src
	q := e.ready[v]
	q[(e.rhead[v]+e.rsize[v])%len(q)] = m
	e.rsize[v]++
}

// NextPacket hands the simulator the next packet of the oldest eligible
// message at node. The tag is the message index.
func (e *Engine) NextPacket(node int) (int, int64, bool) {
	if e.rsize[node] == 0 {
		return 0, 0, false
	}
	m := e.ready[node][e.rhead[node]]
	e.sent[m]++
	if e.sent[m] == int32(e.dag.Messages[m].Packets) {
		e.rhead[node] = (e.rhead[node] + 1) % len(e.ready[node])
		e.rsize[node]--
	}
	return e.dag.Messages[m].Dst, int64(m), true
}

// Delivered retires one packet of message tag; when the message completes
// it unblocks its dependents and updates the step and makespan clocks.
func (e *Engine) Delivered(tag int64, cycle int) {
	m := int32(tag)
	e.remPkts[m]--
	if cycle > e.makespan {
		e.makespan = cycle
	}
	if e.remPkts[m] != 0 {
		return
	}
	e.deliveredAt[m] = int32(cycle)
	e.delivered++
	step := e.dag.Messages[m].Step
	e.stepRem[step]--
	if e.stepRem[step] == 0 {
		e.stepDone[step] = int32(cycle)
	}
	for _, d := range e.depList[e.depStart[m]:e.depStart[m+1]] {
		e.remDeps[d]--
		if e.remDeps[d] == 0 {
			e.eligibleAt[d] = int32(cycle)
			e.push(d)
		}
	}
}

// Done reports whether every message has been fully delivered.
func (e *Engine) Done() bool { return e.delivered == len(e.dag.Messages) }

// Stats summarizes a completed collective run.
type Stats struct {
	// Name is the DAG's collective name.
	Name string
	// Messages and Packets are the job size.
	Messages int
	Packets  int
	// Makespan is the cycle at which the last packet was delivered — the
	// collective completion time.
	Makespan int
	// AvgMessageLatency and MaxMessageLatency measure per-message
	// eligible-to-delivered time in cycles.
	AvgMessageLatency float64
	MaxMessageLatency int
	// StepCompletion[s] is the cycle at which algorithmic step s finished.
	StepCompletion []int
}

// Stats reports the run summary; it is meaningful once Done() is true.
func (e *Engine) Stats() Stats {
	st := Stats{
		Name:           e.dag.Name,
		Messages:       len(e.dag.Messages),
		Packets:        e.dag.TotalPackets(),
		Makespan:       e.makespan,
		StepCompletion: make([]int, len(e.stepDone)),
	}
	var sum float64
	for i := range e.deliveredAt {
		lat := int(e.deliveredAt[i] - e.eligibleAt[i])
		sum += float64(lat)
		if lat > st.MaxMessageLatency {
			st.MaxMessageLatency = lat
		}
	}
	st.AvgMessageLatency = sum / float64(len(e.deliveredAt))
	for s, c := range e.stepDone {
		st.StepCompletion[s] = int(c)
	}
	return st
}

// Run drives one collective to completion on a fresh simulator. The config
// must leave the open-loop knobs (InjectionRate, Pattern, MeanBurst) unset;
// Run installs the DAG as the closed-loop source, disables warmup, and uses
// cfg.MeasureCycles as the completion budget (defaulting to 1<<20 cycles).
// It returns the collective stats alongside the simulator counters, or an
// error if the budget expires before the job drains — which, on a verified
// deadlock-free routing function, indicates the budget is simply too small.
func Run(fn *routing.Function, tb routing.PathSource, dag *DAG, cfg wormsim.Config) (Stats, *wormsim.Result, error) {
	budget := cfg.MeasureCycles
	if budget <= 0 {
		budget = 1 << 20
	}
	n := fn.CG().N()
	eng, err := NewEngine(dag, n)
	if err != nil {
		return Stats{}, nil, err
	}
	cfg.Workload = eng
	cfg.WarmupCycles = wormsim.NoWarmup
	cfg.MeasureCycles = budget
	sim, err := wormsim.New(fn, tb, cfg)
	if err != nil {
		return Stats{}, nil, err
	}
	// Advance in capped chunks so the run never leaves the measurement
	// window — every injection and delivery stays inside the counters.
	const chunk = 256
	for !eng.Done() || sim.InFlight() > 0 {
		step := budget - sim.Cycle()
		if step <= 0 {
			return Stats{}, sim.Finish(), fmt.Errorf(
				"workload: %q did not complete within %d cycles (%d of %d messages delivered)",
				dag.Name, budget, eng.delivered, len(dag.Messages))
		}
		if step > chunk {
			step = chunk
		}
		if err := sim.RunCycles(step); err != nil {
			return Stats{}, sim.Finish(), err
		}
	}
	return eng.Stats(), sim.Finish(), nil
}
