// Package workload generates closed-loop, dependency-driven collective
// traffic for the wormhole simulator. Where the paper evaluates routing
// algorithms only under open-loop Bernoulli arrivals (§5), the fabrics that
// deploy deadlock-free irregular routing are dominated by collective
// communication: all-reduce rings, reduction trees, all-to-all exchanges,
// and parameter-server incast. This package models such jobs as explicit
// message DAGs — a message becomes eligible for injection only once every
// message it depends on has been fully delivered — and drives them through
// wormsim's ClosedLoop interface, reporting completion time (makespan)
// instead of steady-state throughput.
//
// The five built-in generators size themselves to the live topology:
//
//   - RingAllReduce — the classic 2(n-1)-step ring: reduce-scatter followed
//     by all-gather, each node forwarding to its successor once the
//     predecessor's previous chunk has arrived;
//   - TreeReduceBroadcast — reduction up a complete binary tree over node
//     indices, then a broadcast back down;
//   - AllGather — the (n-1)-step ring gather alone;
//   - AllToAll — n-1 rounds of the shifted exchange (round r sends i to
//     i+r mod n), each node self-serialized across rounds;
//   - Incast — the parameter-server push: every node sends to node 0 at
//     once, with no dependencies.
package workload

import (
	"fmt"
	"math/bits"
)

// Message is one logical transfer in a collective: Packets simulator
// packets from Src to Dst, eligible for injection only after every message
// in Deps has been fully delivered.
type Message struct {
	// Src and Dst are node indices in the live topology.
	Src, Dst int
	// Packets is the message size in simulator packets (>= 1); the flit
	// size of each packet is wormsim.Config.PacketLength.
	Packets int
	// Step labels the algorithmic phase the message belongs to (0-based);
	// it drives the per-step completion-time report and has no scheduling
	// effect — only Deps gates eligibility.
	Step int
	// Deps lists the indices (into DAG.Messages) of the messages that must
	// be fully delivered before this one may inject.
	Deps []int32
}

// DAG is a complete collective job: a named set of messages with
// dependencies. The zero value is an empty job; build real ones with the
// generators or ByName.
type DAG struct {
	// Name identifies the collective (one of Names(), for generated DAGs).
	Name string
	// Messages holds the job. Dependencies refer to messages by index.
	Messages []Message
}

// Steps returns the number of algorithmic steps (max Step + 1).
func (d *DAG) Steps() int {
	s := 0
	for i := range d.Messages {
		if d.Messages[i].Step+1 > s {
			s = d.Messages[i].Step + 1
		}
	}
	return s
}

// TotalPackets returns the job size in simulator packets.
func (d *DAG) TotalPackets() int {
	t := 0
	for i := range d.Messages {
		t += d.Messages[i].Packets
	}
	return t
}

// Validate checks the DAG against an n-node topology: node indices in
// range, no self-sends, positive packet counts, dependency indices in
// range, and acyclicity (checked by Kahn elimination).
func (d *DAG) Validate(n int) error {
	for i := range d.Messages {
		m := &d.Messages[i]
		if m.Src < 0 || m.Src >= n || m.Dst < 0 || m.Dst >= n {
			return fmt.Errorf("workload: message %d endpoints (%d -> %d) out of range for %d nodes", i, m.Src, m.Dst, n)
		}
		if m.Src == m.Dst {
			return fmt.Errorf("workload: message %d is a self-send at node %d", i, m.Src)
		}
		if m.Packets < 1 {
			return fmt.Errorf("workload: message %d has %d packets", i, m.Packets)
		}
		if m.Step < 0 {
			return fmt.Errorf("workload: message %d has negative step %d", i, m.Step)
		}
		for _, dep := range m.Deps {
			if dep < 0 || int(dep) >= len(d.Messages) {
				return fmt.Errorf("workload: message %d depends on out-of-range message %d", i, dep)
			}
		}
	}
	// Kahn elimination: repeatedly retire messages whose dependencies are
	// all retired; anything left participates in a cycle.
	rem := make([]int, len(d.Messages))
	dependents := make([][]int32, len(d.Messages))
	queue := make([]int32, 0, len(d.Messages))
	for i := range d.Messages {
		rem[i] = len(d.Messages[i].Deps)
		if rem[i] == 0 {
			queue = append(queue, int32(i))
		}
		for _, dep := range d.Messages[i].Deps {
			dependents[dep] = append(dependents[dep], int32(i))
		}
	}
	done := 0
	for len(queue) > 0 {
		m := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for _, dep := range dependents[m] {
			rem[dep]--
			if rem[dep] == 0 {
				queue = append(queue, dep)
			}
		}
	}
	if done != len(d.Messages) {
		return fmt.Errorf("workload: dependency cycle: only %d of %d messages reachable", done, len(d.Messages))
	}
	return nil
}

func checkShape(name string, n, packets int) error {
	if n < 2 {
		return fmt.Errorf("workload: %s needs at least 2 nodes, got %d", name, n)
	}
	if packets < 1 {
		return fmt.Errorf("workload: %s needs a positive message size, got %d packets", name, packets)
	}
	return nil
}

// RingAllReduce builds the 2(n-1)-step ring all-reduce over n nodes:
// reduce-scatter (steps 0..n-2) then all-gather (steps n-1..2n-3). In every
// step each node sends one message of the given packet count to its
// successor (i+1) mod n, and a node's step-s send waits on its
// predecessor's step-(s-1) send — the chunk it must combine or forward.
func RingAllReduce(n, packets int) (*DAG, error) {
	if err := checkShape("ring all-reduce", n, packets); err != nil {
		return nil, err
	}
	return ringDAG("allreduce", n, packets, 2*(n-1)), nil
}

// AllGather builds the (n-1)-step ring all-gather over n nodes: the
// all-gather half of RingAllReduce alone.
func AllGather(n, packets int) (*DAG, error) {
	if err := checkShape("all-gather", n, packets); err != nil {
		return nil, err
	}
	return ringDAG("allgather", n, packets, n-1), nil
}

// ringDAG lays out steps×n messages on the ring: message (s, i) goes
// i -> (i+1) mod n and depends on message (s-1, (i-1) mod n) — the chunk
// node i received in the previous step.
func ringDAG(name string, n, packets, steps int) *DAG {
	d := &DAG{Name: name, Messages: make([]Message, 0, steps*n)}
	for s := 0; s < steps; s++ {
		for i := 0; i < n; i++ {
			m := Message{Src: i, Dst: (i + 1) % n, Packets: packets, Step: s}
			if s > 0 {
				m.Deps = []int32{int32((s-1)*n + (i-1+n)%n)}
			}
			d.Messages = append(d.Messages, m)
		}
	}
	return d
}

// TreeReduceBroadcast builds a reduce-then-broadcast over the complete
// binary tree on node indices (parent of i is (i-1)/2, root 0). The reduce
// phase sends every node's contribution to its parent once its own
// children have reported; the broadcast phase pushes the result back down,
// each node forwarding to its children once it has received the result.
func TreeReduceBroadcast(n, packets int) (*DAG, error) {
	if err := checkShape("tree reduce+broadcast", n, packets); err != nil {
		return nil, err
	}
	depth := func(i int) int { return bits.Len(uint(i+1)) - 1 }
	treeDepth := depth(n - 1)
	// Reduce message r(i) = id i-1; broadcast message b(i) = id n-2+i.
	d := &DAG{Name: "reduce-bcast", Messages: make([]Message, 0, 2*(n-1))}
	childDeps := func(i int) []int32 {
		var deps []int32
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < n {
				deps = append(deps, int32(c-1))
			}
		}
		return deps
	}
	for i := 1; i < n; i++ {
		d.Messages = append(d.Messages, Message{
			Src:     i,
			Dst:     (i - 1) / 2,
			Packets: packets,
			Step:    treeDepth - depth(i),
			Deps:    childDeps(i),
		})
	}
	for i := 1; i < n; i++ {
		p := (i - 1) / 2
		m := Message{
			Src:     p,
			Dst:     i,
			Packets: packets,
			Step:    treeDepth + depth(i) - 1,
		}
		if p == 0 {
			m.Deps = childDeps(0) // the root holds the result once its subtrees report
		} else {
			m.Deps = []int32{int32(n - 2 + p)}
		}
		d.Messages = append(d.Messages, m)
	}
	return d, nil
}

// AllToAll builds the (n-1)-round shifted personalized exchange: in round
// r (1-based), node i sends to (i+r) mod n. Each node is self-serialized —
// its round-r send waits on the delivery of its own round-(r-1) send —
// which spreads the rounds without a global barrier.
func AllToAll(n, packets int) (*DAG, error) {
	if err := checkShape("all-to-all", n, packets); err != nil {
		return nil, err
	}
	d := &DAG{Name: "alltoall", Messages: make([]Message, 0, (n-1)*n)}
	for r := 1; r < n; r++ {
		for i := 0; i < n; i++ {
			m := Message{Src: i, Dst: (i + r) % n, Packets: packets, Step: r - 1}
			if r > 1 {
				m.Deps = []int32{int32((r-2)*n + i)}
			}
			d.Messages = append(d.Messages, m)
		}
	}
	return d, nil
}

// Incast builds the parameter-server push: every node except node 0 sends
// one message to node 0, all eligible at once. It is the worst-case
// many-to-one burst for the tree root region the paper's hot-spot metric
// (Table 3) worries about.
func Incast(n, packets int) (*DAG, error) {
	if err := checkShape("incast", n, packets); err != nil {
		return nil, err
	}
	d := &DAG{Name: "incast", Messages: make([]Message, 0, n-1)}
	for i := 1; i < n; i++ {
		d.Messages = append(d.Messages, Message{Src: i, Dst: 0, Packets: packets, Step: 0})
	}
	return d, nil
}

// Names returns the built-in collective names in canonical study order.
func Names() []string {
	return []string{"allreduce", "reduce-bcast", "allgather", "alltoall", "incast"}
}

// ByName builds the named collective for an n-node topology with the given
// message size in packets. The name must be one of Names().
func ByName(name string, n, packets int) (*DAG, error) {
	switch name {
	case "allreduce":
		return RingAllReduce(n, packets)
	case "reduce-bcast":
		return TreeReduceBroadcast(n, packets)
	case "allgather":
		return AllGather(n, packets)
	case "alltoall":
		return AllToAll(n, packets)
	case "incast":
		return Incast(n, packets)
	}
	return nil, fmt.Errorf("workload: unknown collective %q (have %v)", name, Names())
}
