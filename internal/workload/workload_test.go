package workload

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/cgraph"
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/wormsim"
)

// buildNet builds a verified DOWN/UP routing function over a random
// irregular network for driver tests.
func buildNet(t *testing.T, seed uint64, switches, ports int) (*routing.Function, *routing.Table) {
	t.Helper()
	g, err := topology.RandomIrregular(
		topology.IrregularConfig{Switches: switches, Ports: ports, Fill: 1}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ctree.Build(g, ctree.M1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := core.DownUp{}.Build(cgraph.Build(tr))
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.Verify(); err != nil {
		t.Fatal(err)
	}
	return fn, routing.NewTable(fn)
}

func TestGeneratorShapes(t *testing.T) {
	const n, p = 9, 3
	cases := []struct {
		name     string
		messages int
		steps    int
	}{
		{"allreduce", 2 * (n - 1) * n, 2 * (n - 1)},
		{"allgather", (n - 1) * n, n - 1},
		{"alltoall", (n - 1) * n, n - 1},
		{"incast", n - 1, 1},
		{"reduce-bcast", 2 * (n - 1), 6}, // tree depth 3 -> 3 reduce + 3 bcast steps
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := ByName(tc.name, n, p)
			if err != nil {
				t.Fatal(err)
			}
			if d.Name != tc.name {
				t.Fatalf("name %q, want %q", d.Name, tc.name)
			}
			if len(d.Messages) != tc.messages {
				t.Fatalf("%d messages, want %d", len(d.Messages), tc.messages)
			}
			if d.Steps() != tc.steps {
				t.Fatalf("%d steps, want %d", d.Steps(), tc.steps)
			}
			if d.TotalPackets() != tc.messages*p {
				t.Fatalf("%d packets, want %d", d.TotalPackets(), tc.messages*p)
			}
			if err := d.Validate(n); err != nil {
				t.Fatal(err)
			}
			// Dependencies must point strictly backwards in step order —
			// a sufficient (not necessary) acyclicity witness that also
			// pins the step labeling.
			for i := range d.Messages {
				for _, dep := range d.Messages[i].Deps {
					if d.Messages[dep].Step >= d.Messages[i].Step {
						t.Fatalf("message %d (step %d) depends on %d (step %d)",
							i, d.Messages[i].Step, dep, d.Messages[dep].Step)
					}
				}
			}
		})
	}
	if _, err := ByName("bogus", n, p); err == nil {
		t.Fatal("unknown collective accepted")
	}
	for _, name := range Names() {
		if _, err := ByName(name, 1, p); err == nil {
			t.Fatalf("%s accepted a 1-node topology", name)
		}
		if _, err := ByName(name, n, 0); err == nil {
			t.Fatalf("%s accepted a 0-packet message size", name)
		}
	}
}

func TestRingAllReduceDependencies(t *testing.T) {
	d, err := RingAllReduce(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Step-0 messages are roots; message (s, i) depends on (s-1, i-1 mod n).
	for i := 0; i < 5; i++ {
		if len(d.Messages[i].Deps) != 0 {
			t.Fatalf("step-0 message %d has deps %v", i, d.Messages[i].Deps)
		}
	}
	m := d.Messages[2*5+3] // step 2, node 3
	if m.Src != 3 || m.Dst != 4 {
		t.Fatalf("message (2,3) is %d -> %d", m.Src, m.Dst)
	}
	if len(m.Deps) != 1 || m.Deps[0] != int32(1*5+2) {
		t.Fatalf("message (2,3) deps %v, want [(1,2)]", m.Deps)
	}
}

func TestValidateRejectsBadDAGs(t *testing.T) {
	bad := []DAG{
		{Name: "self", Messages: []Message{{Src: 1, Dst: 1, Packets: 1}}},
		{Name: "range", Messages: []Message{{Src: 0, Dst: 99, Packets: 1}}},
		{Name: "packets", Messages: []Message{{Src: 0, Dst: 1, Packets: 0}}},
		{Name: "dep-range", Messages: []Message{{Src: 0, Dst: 1, Packets: 1, Deps: []int32{7}}}},
		{Name: "cycle", Messages: []Message{
			{Src: 0, Dst: 1, Packets: 1, Deps: []int32{1}},
			{Src: 1, Dst: 0, Packets: 1, Deps: []int32{0}},
		}},
	}
	for i := range bad {
		if err := bad[i].Validate(4); err == nil {
			t.Fatalf("DAG %q accepted", bad[i].Name)
		}
		if _, err := NewEngine(&bad[i], 4); err == nil {
			t.Fatalf("NewEngine accepted DAG %q", bad[i].Name)
		}
	}
	if _, err := NewEngine(&DAG{Name: "empty"}, 4); err == nil {
		t.Fatal("NewEngine accepted an empty DAG")
	}
}

// TestEngineSchedulesDependencies drives the scheduler by hand (no
// simulator) and checks eligibility gating, multi-packet accounting, and
// the stats clocks.
func TestEngineSchedulesDependencies(t *testing.T) {
	d := &DAG{Name: "hand", Messages: []Message{
		{Src: 0, Dst: 1, Packets: 2, Step: 0},
		{Src: 1, Dst: 2, Packets: 1, Step: 1, Deps: []int32{0}},
	}}
	e, err := NewEngine(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := e.NextPacket(1); ok {
		t.Fatal("dependent message eligible before its dependency delivered")
	}
	dst, tag, ok := e.NextPacket(0)
	if !ok || dst != 1 || tag != 0 {
		t.Fatalf("first poll: (%d, %d, %v)", dst, tag, ok)
	}
	if _, _, ok := e.NextPacket(0); !ok {
		t.Fatal("second packet of message 0 not offered")
	}
	if _, _, ok := e.NextPacket(0); ok {
		t.Fatal("message 0 offered more packets than it has")
	}
	e.Delivered(0, 10)
	if _, _, ok := e.NextPacket(1); ok {
		t.Fatal("message 1 eligible after partial delivery of its dependency")
	}
	e.Delivered(0, 12)
	dst, tag, ok = e.NextPacket(1)
	if !ok || dst != 2 || tag != 1 {
		t.Fatalf("post-dependency poll: (%d, %d, %v)", dst, tag, ok)
	}
	if e.Done() {
		t.Fatal("Done before final delivery")
	}
	e.Delivered(1, 20)
	if !e.Done() {
		t.Fatal("not Done after all deliveries")
	}
	st := e.Stats()
	want := Stats{
		Name: "hand", Messages: 2, Packets: 3, Makespan: 20,
		AvgMessageLatency: 10, MaxMessageLatency: 12,
		StepCompletion: []int{12, 20},
	}
	if !reflect.DeepEqual(st, want) {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
}

// TestRunCompletesAllCollectives runs every built-in collective to
// completion on a small network and sanity-checks the stats.
func TestRunCompletesAllCollectives(t *testing.T) {
	fn, tb := buildNet(t, 11, 16, 4)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			d, err := ByName(name, 16, 2)
			if err != nil {
				t.Fatal(err)
			}
			st, res, err := Run(fn, tb, d, wormsim.Config{PacketLength: 16, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if st.Makespan <= 0 {
				t.Fatalf("makespan %d", st.Makespan)
			}
			if err := res.CheckConservation(); err != nil {
				t.Fatal(err)
			}
			if res.FlitsInjected != int64(d.TotalPackets()*16) {
				t.Fatalf("injected %d flits, want %d", res.FlitsInjected, d.TotalPackets()*16)
			}
			// Ring and shifted-exchange steps are totally ordered (every
			// step-s message depends on a step-(s-1) one), so their
			// completion times are monotone. The tree collective's are
			// not: an uneven tree's deepest broadcast can outrun the rest
			// of the previous step.
			monotone := name == "allreduce" || name == "allgather" || name == "alltoall"
			last := 0
			for s, c := range st.StepCompletion {
				if c <= 0 || c > st.Makespan {
					t.Fatalf("step %d completion %d outside (0, %d]", s, c, st.Makespan)
				}
				if monotone && s > 0 && c < st.StepCompletion[s-1] {
					t.Fatalf("step %d completed at %d before step %d at %d",
						s, c, s-1, st.StepCompletion[s-1])
				}
				if c > last {
					last = c
				}
			}
			if last != st.Makespan {
				t.Fatalf("latest step completion %d differs from makespan %d", last, st.Makespan)
			}
		})
	}
}

// TestRunBudgetError pins the budget-exhaustion path: an absurdly small
// budget fails loudly instead of hanging.
func TestRunBudgetError(t *testing.T) {
	fn, tb := buildNet(t, 12, 16, 4)
	d, err := RingAllReduce(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(fn, tb, d, wormsim.Config{PacketLength: 16, MeasureCycles: 64, Seed: 3}); err == nil {
		t.Fatal("64-cycle budget accepted for a full all-reduce")
	}
}

// TestRunEnginesByteIdentical extends the wormsim differential guarantee to
// the real DAG scheduler: every collective must produce byte-identical
// stats and simulator counters under every engine wormsim.Engines() lists,
// across source-routed and adaptive modes.
func TestRunEnginesByteIdentical(t *testing.T) {
	fn, tb := buildNet(t, 13, 24, 4)
	engines := wormsim.Engines()
	for _, mode := range []wormsim.Mode{wormsim.SourceRouted, wormsim.Adaptive} {
		for _, name := range Names() {
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				type out struct {
					St  Stats
					Res *wormsim.Result
				}
				outs := make([]out, len(engines))
				for i, engine := range engines {
					d, err := ByName(name, 24, 2)
					if err != nil {
						t.Fatal(err)
					}
					st, res, err := Run(fn, tb, d, wormsim.Config{
						Mode:         mode,
						PacketLength: 16,
						Seed:         5,
						Engine:       engine,
					})
					if err != nil {
						t.Fatalf("engine %v: %v", engine, err)
					}
					outs[i] = out{St: st, Res: res}
				}
				sj, err := json.Marshal(outs[0])
				if err != nil {
					t.Fatal(err)
				}
				for i, o := range outs[1:] {
					ej, err := json.Marshal(o)
					if err != nil {
						t.Fatal(err)
					}
					if string(sj) != string(ej) {
						t.Fatalf("engines diverge:\n%s: %s\n%s: %s", engines[0], sj, engines[i+1], ej)
					}
				}
			})
		}
	}
}

// TestRunDeterministic pins run-to-run determinism: two identical Runs
// yield identical stats and counters.
func TestRunDeterministic(t *testing.T) {
	fn, tb := buildNet(t, 14, 16, 4)
	var got [2]string
	for i := range got {
		d, err := AllToAll(16, 2)
		if err != nil {
			t.Fatal(err)
		}
		st, res, err := Run(fn, tb, d, wormsim.Config{Mode: wormsim.Adaptive, PacketLength: 16, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(struct {
			St  Stats
			Res *wormsim.Result
		}{st, res})
		if err != nil {
			t.Fatal(err)
		}
		got[i] = string(b)
	}
	if got[0] != got[1] {
		t.Fatalf("repeat runs diverge:\n%s\n%s", got[0], got[1])
	}
}
