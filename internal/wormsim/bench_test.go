package wormsim

// Engine microbenchmarks and the steady-state allocation regression test.
// BenchmarkRunCycles times single cycles of a warmed paper-scale network
// under both engines (the speedup ratio is what results/BENCH_wormsim.json
// records); BenchmarkSweep times a whole small run end to end, New included.

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// benchConfigs are the network shapes the perf pipeline tracks: the paper's
// 128-switch networks at both port counts, under paper-scale load.
var benchConfigs = []struct {
	name  string
	ports int
	rate  float64
}{
	{"128sw-4port", 4, 0.1},
	{"128sw-8port", 8, 0.1},
}

func BenchmarkRunCycles(b *testing.B) {
	for _, bc := range benchConfigs {
		for _, engine := range Engines() {
			b.Run(bc.name+"/"+engine.String(), func(b *testing.B) {
				f, tb := randomFn(b, 1, 128, bc.ports, core.DownUp{})
				sim, err := New(f, tb, Config{
					InjectionRate: bc.rate,
					WarmupCycles:  NoWarmup,
					MeasureCycles: 1 << 30,
					Seed:          1,
					Engine:        engine,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := sim.RunCycles(2000); err != nil {
					b.Fatal(err) // warm the network to steady state
				}
				b.ReportAllocs()
				b.ResetTimer()
				if err := sim.RunCycles(b.N); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkRunCyclesScale times warmed cycles at the fabric scales the
// parallel engine targets (1024 and 4096 switches), under enough load that
// a cycle carries real work. The scan baseline is omitted — its full
// rescan is exactly what these scales rule out.
func BenchmarkRunCyclesScale(b *testing.B) {
	for _, switches := range []int{1024, 4096} {
		for _, engine := range []Engine{EngineEvent, EngineParallel} {
			b.Run(fmt.Sprintf("%dsw/%s", switches, engine), func(b *testing.B) {
				f, tb := randomFn(b, 1, switches, 4, core.DownUp{})
				sim, err := New(f, tb, Config{
					PacketLength:  32,
					InjectionRate: 0.3,
					WarmupCycles:  NoWarmup,
					MeasureCycles: 1 << 30,
					Seed:          1,
					Engine:        engine,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := sim.RunCycles(500); err != nil {
					b.Fatal(err) // warm the network to steady state
				}
				b.ReportAllocs()
				b.ResetTimer()
				if err := sim.RunCycles(b.N); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				sim.Finish()
			})
		}
	}
}

func BenchmarkSweep(b *testing.B) {
	for _, engine := range Engines() {
		b.Run(engine.String(), func(b *testing.B) {
			f, tb := randomFn(b, 2, 32, 4, core.DownUp{})
			cfg := Config{
				PacketLength:  32,
				InjectionRate: 0.1,
				WarmupCycles:  500,
				MeasureCycles: 4000,
				Seed:          3,
				Engine:        engine,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim, err := New(f, tb, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestSteadyStateAllocs pins the event engine's no-allocation guarantee:
// once the network is warm and the unbounded ledgers (the packet table, the
// latency sample, the source queues) have been given room, a simulation
// cycle allocates nothing. Adaptive mode is used because source-routed
// packets intrinsically allocate their route slice at creation. The
// closed-loop subtest runs the same check over the Workload injection path
// (poll + delivery notification), with a fixed-capacity token-circulation
// source.
func TestSteadyStateAllocs(t *testing.T) {
	cases := []struct {
		name     string
		switches int // 0 = 32
		cfg      Config
	}{
		{name: "open-loop", cfg: Config{
			Mode:          Adaptive,
			PacketLength:  8,
			InjectionRate: 0.2,
			WarmupCycles:  NoWarmup,
			MeasureCycles: 1 << 30,
			Seed:          5,
		}},
		{name: "closed-loop", cfg: Config{
			Mode:          Adaptive,
			PacketLength:  8,
			Workload:      newTokenRing(32, 16),
			WarmupCycles:  NoWarmup,
			MeasureCycles: 1 << 30,
			Seed:          5,
		}},
		// The parallel case runs four real workers (256 switches) with a
		// deterministic selection so the multi-worker crossbar, feed, and
		// generate phases — not the sequential fallbacks — are what is
		// measured: no per-cycle heap allocation on any worker.
		{name: "parallel", switches: 256, cfg: Config{
			Mode:          Adaptive,
			Select:        SelectFirst,
			PacketLength:  8,
			InjectionRate: 0.2,
			WarmupCycles:  NoWarmup,
			MeasureCycles: 1 << 30,
			Seed:          5,
			Engine:        EngineParallel,
			Workers:       4,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			switches := tc.switches
			if switches == 0 {
				switches = 32
			}
			f, tb := randomFn(t, 21, switches, 4, core.DownUp{})
			sim, err := New(f, tb, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := sim.RunCycles(5000); err != nil {
				t.Fatal(err)
			}
			// Pre-reserve the growth inherent to an ever-running simulation
			// so the measurement isolates the cycle loop's own behavior.
			sim.packets = append(make([]packet, 0, len(sim.packets)+1<<16), sim.packets...)
			sim.latencies = append(make([]int32, 0, len(sim.latencies)+1<<16), sim.latencies...)
			for v := range sim.queues {
				q := make([]int32, len(sim.queues[v]), 4096)
				copy(q, sim.queues[v])
				sim.queues[v] = q
			}
			avg := testing.AllocsPerRun(500, func() {
				if err := sim.RunCycles(1); err != nil {
					t.Fatal(err)
				}
			})
			if avg > 0 {
				t.Fatalf("steady-state cycle allocates: %v allocs/cycle, want 0", avg)
			}
		})
	}
}
