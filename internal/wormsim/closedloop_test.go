package wormsim

// Closed-loop injection tests: in-package fakes of the ClosedLoop interface
// (the real dependency-DAG engine lives in internal/workload, which imports
// this package and carries its own differential suite). These fakes cover
// the simulator-side mechanism: polling order, delivery notification, the
// open-loop/closed-loop config exclusion, and the steady-state allocation
// guarantee over the closed-loop path.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

// chainLoop is a serial dependency chain: message i (p packets, from
// i mod n to a deterministic other node) becomes eligible only when message
// i-1 has fully delivered. It exercises multi-packet messages and strict
// cross-node ordering.
type chainLoop struct {
	n, msgs, p     int
	cur            int // current message id
	sent, deliv    int // packets of the current message sent / delivered
	totalDelivered int
}

func newChainLoop(n, msgs, packets int) *chainLoop {
	return &chainLoop{n: n, msgs: msgs, p: packets}
}

func (c *chainLoop) src(i int) int { return i % c.n }

func (c *chainLoop) dst(i int) int { return (c.src(i) + 1 + i%(c.n-1)) % c.n }

func (c *chainLoop) NextPacket(node int) (int, int64, bool) {
	if c.cur >= c.msgs || c.sent == c.p || node != c.src(c.cur) {
		return 0, 0, false
	}
	c.sent++
	return c.dst(c.cur), int64(c.cur), true
}

func (c *chainLoop) Delivered(tag int64, cycle int) {
	if int(tag) != c.cur {
		panic("chainLoop: delivery for a message that is not current")
	}
	c.deliv++
	c.totalDelivered++
	if c.deliv == c.p {
		c.cur++
		c.sent, c.deliv = 0, 0
	}
}

func (c *chainLoop) Done() bool { return c.cur >= c.msgs }

// fanLoop is a two-phase fan-out/fan-in: node 0 sends one packet to every
// other node; each node replies to 0 once its packet arrives. It exercises
// concurrent eligibility and the incast delivery path.
type fanLoop struct {
	n          int
	next       int // next fan-out destination
	replyReady []bool
	replySent  []bool
	replies    int
}

func newFanLoop(n int) *fanLoop {
	return &fanLoop{n: n, next: 1, replyReady: make([]bool, n), replySent: make([]bool, n)}
}

func (f *fanLoop) NextPacket(node int) (int, int64, bool) {
	if node == 0 {
		if f.next < f.n {
			d := f.next
			f.next++
			return d, int64(d), true
		}
		return 0, 0, false
	}
	if f.replyReady[node] && !f.replySent[node] {
		f.replySent[node] = true
		return 0, int64(f.n + node), true
	}
	return 0, 0, false
}

func (f *fanLoop) Delivered(tag int64, cycle int) {
	if int(tag) < f.n {
		f.replyReady[tag] = true
		return
	}
	f.replies++
}

func (f *fanLoop) Done() bool { return f.replies == f.n-1 }

// tokenRing circulates a fixed set of tokens forever: a token delivered at
// node v is immediately eligible to hop to v+1. All state is fixed-capacity,
// so the source is allocation-free — the closed-loop half of the
// steady-state allocation guarantee.
type tokenRing struct {
	n     int
	ready [][]int32
	rhead []int
	rsize []int
}

func newTokenRing(n, tokens int) *tokenRing {
	tr := &tokenRing{
		n:     n,
		ready: make([][]int32, n),
		rhead: make([]int, n),
		rsize: make([]int, n),
	}
	for v := 0; v < n; v++ {
		tr.ready[v] = make([]int32, tokens)
	}
	for t := 0; t < tokens; t++ {
		tr.push(t%n, int32(t))
	}
	return tr
}

func (tr *tokenRing) push(v int, t int32) {
	q := tr.ready[v]
	q[(tr.rhead[v]+tr.rsize[v])%len(q)] = t
	tr.rsize[v]++
}

func (tr *tokenRing) NextPacket(node int) (int, int64, bool) {
	if tr.rsize[node] == 0 {
		return 0, 0, false
	}
	t := tr.ready[node][tr.rhead[node]]
	tr.rhead[node] = (tr.rhead[node] + 1) % len(tr.ready[node])
	tr.rsize[node]--
	dst := (node + 1) % tr.n
	return dst, int64(t)*int64(tr.n) + int64(dst), true
}

func (tr *tokenRing) Delivered(tag int64, cycle int) {
	tr.push(int(tag%int64(tr.n)), int32(tag/int64(tr.n)))
}

func (tr *tokenRing) Done() bool { return false }

// TestClosedLoopExcludesOpenLoopKnobs pins the config contract: a closed-
// loop source cannot be combined with the open-loop arrival knobs.
func TestClosedLoopExcludesOpenLoopKnobs(t *testing.T) {
	f, tb := randomFn(t, 31, 8, 4, core.DownUp{})
	bad := []Config{
		{Workload: newFanLoop(8), InjectionRate: 0.1},
		{Workload: newFanLoop(8), MeanBurst: 4},
		{Workload: newFanLoop(8), Pattern: fakePattern{}},
	}
	for i, cfg := range bad {
		if _, err := New(f, tb, cfg); err == nil {
			t.Fatalf("config %d: closed-loop source combined with open-loop knobs accepted", i)
		}
	}
	if _, err := New(f, tb, Config{Workload: newFanLoop(8)}); err != nil {
		t.Fatalf("pure closed-loop config rejected: %v", err)
	}
}

type fakePattern struct{}

func (fakePattern) Name() string { return "fake" }

func (fakePattern) Dest(src int, _ *rng.Rng) int { return (src + 1) % 2 }

// TestClosedLoopCompletesAndNotifies runs the chain workload to completion
// on every engine and checks every delivery was reported back.
func TestClosedLoopCompletesAndNotifies(t *testing.T) {
	const msgs, pkts = 30, 2
	for _, engine := range Engines() {
		cl := newChainLoop(16, msgs, pkts)
		f, tb := randomFn(t, 32, 16, 4, core.DownUp{})
		sim, err := New(f, tb, Config{
			PacketLength:  16,
			Workload:      cl,
			WarmupCycles:  NoWarmup,
			MeasureCycles: 200000,
			Seed:          9,
			Engine:        engine,
		})
		if err != nil {
			t.Fatal(err)
		}
		for !cl.Done() {
			if err := sim.RunCycles(256); err != nil {
				t.Fatalf("engine %v: %v", engine, err)
			}
			if sim.Cycle() > 150000 {
				t.Fatalf("engine %v: chain workload did not complete", engine)
			}
		}
		for sim.InFlight() > 0 {
			if err := sim.RunCycles(64); err != nil {
				t.Fatal(err)
			}
		}
		res := sim.Finish()
		if cl.totalDelivered != msgs*pkts {
			t.Fatalf("engine %v: %d packet deliveries notified, want %d", engine, cl.totalDelivered, msgs*pkts)
		}
		if res.FlitsInjected != int64(msgs*pkts*16) {
			t.Fatalf("engine %v: injected %d flits, want %d", engine, res.FlitsInjected, msgs*pkts*16)
		}
		if err := res.CheckConservation(); err != nil {
			t.Fatal(err)
		}
	}
}
