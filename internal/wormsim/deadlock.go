package wormsim

// Structured deadlock diagnostics. When the watchdog fires, the simulator
// walks the wait-for graph over virtual-channel lanes — lane A waits for
// lane B when the head flit buffered on A cannot advance because B (the
// resource it needs next) is allocated to another packet or has no space —
// and extracts a cycle. A cycle of waiting channels is the definition of
// wormhole deadlock (paper Definition 7 works at the granularity of turns;
// this is the channel-level witness), so the report shows not just *that*
// the network froze but *which* channels hold which packets while waiting
// for each other.

import (
	"fmt"
	"strings"

	"repro/internal/routing"
)

// BlockedVC is one virtual channel in a deadlock report: the lane whose
// head flit cannot advance, the packet it belongs to, and the switch where
// it is waiting.
type BlockedVC struct {
	// Channel is the cgraph channel id of the lane, or -1 for an injection
	// lane.
	Channel int
	// VC is the virtual-channel index within the physical channel.
	VC int
	// Node is the switch holding the blocked head flit.
	Node int
	// Packet is the id of the packet whose flit is blocked.
	Packet int
	// From and To are the lane's physical endpoints (From == To == Node for
	// injection lanes).
	From, To int
}

// String renders the blocked lane as "ch(c)/vc(v) pkt p" (or "inj(n) pkt
// p" for an injection lane).
func (b BlockedVC) String() string {
	if b.Channel < 0 {
		return fmt.Sprintf("inj(%d) pkt %d", b.Node, b.Packet)
	}
	return fmt.Sprintf("ch%d<%d,%d>/vc%d pkt %d", b.Channel, b.From, b.To, b.VC, b.Packet)
}

// DeadlockInfo is the structured diagnostic of a detected deadlock.
type DeadlockInfo struct {
	// DetectedAt is the cycle the watchdog fired.
	DetectedAt int
	// FrozenFlits is the number of flits in the network at detection.
	FrozenFlits int
	// FrozenFor is the number of cycles without any flit movement.
	FrozenFor int
	// Algorithm names the routing function being simulated.
	Algorithm string
	// Cycle is a cycle of blocked virtual channels: each entry waits on the
	// next (and the last on the first). Empty only if no cycle could be
	// extracted from the wait-for graph — a starvation rather than a
	// circular wait, which a threshold watchdog cannot distinguish.
	Cycle []BlockedVC
	// Blocked lists every blocked lane (the cycle plus any lanes waiting
	// into it).
	Blocked []BlockedVC
}

// DescribeCycle renders the cycle as "a -> b -> ... -> a".
func (d *DeadlockInfo) DescribeCycle() string {
	if len(d.Cycle) == 0 {
		return "(no circular wait found)"
	}
	parts := make([]string, 0, len(d.Cycle)+1)
	for _, b := range d.Cycle {
		parts = append(parts, b.String())
	}
	parts = append(parts, d.Cycle[0].String())
	return strings.Join(parts, " -> ")
}

// DeadlockError is the error returned when the deadlock watchdog fires; it
// wraps the structured diagnostic.
type DeadlockError struct {
	Info *DeadlockInfo
}

// Error renders the deadlock diagnostic as a one-line summary; the
// structured detail stays in Info.
func (e *DeadlockError) Error() string {
	d := e.Info
	return fmt.Sprintf("wormsim: deadlock detected at cycle %d (%d flits frozen for %d cycles) under %s: %s",
		d.DetectedAt, d.FrozenFlits, d.FrozenFor, d.Algorithm, d.DescribeCycle())
}

// laneInfo converts a vclane index to its report form. pkt is the blocked
// packet on the lane.
func (s *Simulator) laneInfo(l int32, pkt int32) BlockedVC {
	if ch := s.vclChannel(l); ch >= 0 {
		c := s.cg.Channels[ch]
		return BlockedVC{Channel: ch, VC: int(l) % s.nVC, Node: c.To, Packet: int(pkt), From: c.From, To: c.To}
	}
	v := int(l) - s.nCh*s.nVC // injection lane index
	return BlockedVC{Channel: -1, Node: v, Packet: int(pkt), From: v, To: v}
}

// waitGraph builds the wait-for graph over virtual-channel lanes: for
// every lane whose buffered head flit has been resting for at least
// minStall cycles and cannot advance, the lanes it needs that are
// currently unavailable. minStall 0 is the post-mortem view (every
// blocked lane); the online detector passes its scan interval so that
// transient waits never enter the graph.
func (s *Simulator) waitGraph(minStall int32) (waits map[int32][]int32, blockedPkt map[int32]int32) {
	waits = make(map[int32][]int32)
	blockedPkt = make(map[int32]int32)
	for v := 0; v < s.n; v++ {
		for _, li := range s.inVCLs[v] {
			b := &s.bufs[li]
			if b.empty() {
				continue
			}
			f := b.front()
			if s.now-f.arrived < minStall {
				continue
			}
			wants := s.wantedLanes(v, li, f)
			var blockers []int32
			for _, out := range wants {
				if s.owner[out] != noOwner && s.owner[out] != f.pkt {
					blockers = append(blockers, out)
					continue
				}
				if !s.canAccept(out) {
					blockers = append(blockers, out)
				}
			}
			if len(blockers) > 0 {
				waits[li] = blockers
				blockedPkt[li] = f.pkt
			}
		}
	}
	return waits, blockedPkt
}

// deadlockInfo builds the diagnostic at watchdog time.
func (s *Simulator) deadlockInfo() *DeadlockInfo {
	info := &DeadlockInfo{
		DetectedAt:  int(s.now),
		FrozenFlits: s.inFlight,
		FrozenFor:   s.cfg.DeadlockThreshold,
		Algorithm:   s.fn.AlgorithmName,
	}
	waits, blockedPkt := s.waitGraph(0)
	for li, pkt := range blockedPkt {
		info.Blocked = append(info.Blocked, s.laneInfo(li, pkt))
	}
	sortBlocked(info.Blocked)
	info.Cycle = s.findWaitCycle(waits, blockedPkt)
	return info
}

// wantedLanes returns the lanes the head flit on li at switch v needs to
// advance.
func (s *Simulator) wantedLanes(v int, li int32, f *flit) []int32 {
	if f.idx != 0 {
		if out := s.nextOut[li]; out != noVCL {
			return []int32{out}
		}
		return nil
	}
	p := &s.packets[f.pkt]
	if int32(v) == p.dst {
		return []int32{s.ejectVCL(v)}
	}
	var wants []int32
	switch s.cfg.Mode {
	case SourceRouted, Deterministic:
		if p.hop < int32(len(p.route)) {
			ch := int(p.route[p.hop])
			for vc := 0; vc < s.nVC; vc++ {
				wants = append(wants, int32(ch*s.nVC+vc))
			}
		}
	default: // Adaptive
		state := routingStateOf(v, s.vclChannel(li))
		cands := s.tb.NextChannels(int(p.dst), state, nil)
		for _, ch := range cands {
			for vc := 0; vc < s.nVC; vc++ {
				wants = append(wants, int32(ch*s.nVC+vc))
			}
		}
	}
	return wants
}

// findWaitCycle extracts one cycle from the wait-for graph via iterative
// DFS with tricolor marking, preferring the lexicographically smallest
// start lane for determinism.
func (s *Simulator) findWaitCycle(waits map[int32][]int32, blockedPkt map[int32]int32) []BlockedVC {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int32]int, len(waits))
	starts := make([]int32, 0, len(waits))
	for li := range waits {
		starts = append(starts, li)
	}
	sortLanes(starts)
	type frame struct {
		lane int32
		next int
	}
	for _, start := range starts {
		if color[start] != white {
			continue
		}
		stack := []frame{{lane: start}}
		color[start] = gray
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			succ := waits[fr.lane]
			if fr.next >= len(succ) {
				color[fr.lane] = black
				stack = stack[:len(stack)-1]
				continue
			}
			nxt := succ[fr.next]
			fr.next++
			if _, isWaiter := waits[nxt]; !isWaiter {
				continue // waits on a lane that is not itself blocked
			}
			switch color[nxt] {
			case white:
				color[nxt] = gray
				stack = append(stack, frame{lane: nxt})
			case gray:
				// Found a cycle: the stack suffix from nxt onward.
				i := len(stack) - 1
				for i >= 0 && stack[i].lane != nxt {
					i--
				}
				cyc := make([]BlockedVC, 0, len(stack)-i)
				for ; i < len(stack); i++ {
					l := stack[i].lane
					cyc = append(cyc, s.laneInfo(l, blockedPkt[l]))
				}
				return cyc
			}
		}
	}
	return nil
}

func sortLanes(ls []int32) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j] < ls[j-1]; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}

func sortBlocked(bs []BlockedVC) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && lessBlocked(bs[j], bs[j-1]); j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}

func lessBlocked(a, b BlockedVC) bool {
	if a.Channel != b.Channel {
		return a.Channel < b.Channel
	}
	if a.VC != b.VC {
		return a.VC < b.VC
	}
	return a.Node < b.Node
}

// routingStateOf encodes the adaptive routing state for a packet at switch
// v that arrived on channel ch (-1 for injection).
func routingStateOf(v, ch int) int {
	if ch >= 0 {
		return ch
	}
	return routing.InjectionState(v)
}
