package wormsim

import (
	"errors"
	"testing"

	"repro/internal/cgraph"
	"repro/internal/ctree"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/turnmodel"
)

// unrestrictedRing builds the cyclic-routing setup of TestDeadlockDetection:
// a ring under a routing function with no prohibited turns, the canonical
// wormhole deadlock.
func unrestrictedRing(t *testing.T, n int) (*routing.Function, *routing.Table) {
	t.Helper()
	tr, err := ctree.Build(topology.Ring(n), ctree.M1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cg := cgraph.Build(tr)
	sys := turnmodel.NewSystem(cg, turnmodel.EightDir{}, turnmodel.NewMask(8, nil))
	f := &routing.Function{AlgorithmName: "unrestricted", Sys: sys}
	return f, routing.NewTable(f)
}

// TestDeadlockDiagnostic checks the structured side of watchdog aborts: a
// cyclic routing function must produce a *DeadlockError carrying a non-empty
// wait-for cycle of blocked virtual channels, and the partial Result must
// carry the same diagnostic.
func TestDeadlockDiagnostic(t *testing.T) {
	f, tb := unrestrictedRing(t, 4)
	sim, err := New(f, tb, Config{
		PacketLength:      64,
		BufferDepth:       2,
		InjectionRate:     0.8,
		WarmupCycles:      NoWarmup,
		MeasureCycles:     50000,
		DeadlockThreshold: 1000,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err == nil {
		t.Fatal("unrestricted ring at high load did not deadlock")
	}
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("error is %T, want *DeadlockError: %v", err, err)
	}
	info := dl.Info
	if info == nil {
		t.Fatal("DeadlockError without Info")
	}
	if res == nil || res.Deadlock != info {
		t.Fatal("partial Result does not carry the deadlock diagnostic")
	}
	if info.FrozenFlits <= 0 {
		t.Fatalf("diagnostic reports %d frozen flits", info.FrozenFlits)
	}
	if info.FrozenFor < 1000 {
		t.Fatalf("diagnostic reports FrozenFor=%d, threshold was 1000", info.FrozenFor)
	}
	// The defining property of a wormhole deadlock: a cycle in the wait-for
	// graph over virtual channels. At least two VCs must wait on each other.
	if len(info.Cycle) < 2 {
		t.Fatalf("deadlock cycle has %d entries, want >= 2: %+v", len(info.Cycle), info.Cycle)
	}
	cg := f.CG()
	seen := make(map[int]bool)
	for _, b := range info.Cycle {
		if b.Packet < 0 {
			t.Fatalf("cycle entry without an owning packet: %+v", b)
		}
		if b.Channel >= 0 {
			if b.Channel >= len(cg.Channels) {
				t.Fatalf("cycle entry channel %d out of range", b.Channel)
			}
			if seen[b.Channel*8+b.VC] {
				t.Fatalf("cycle repeats lane %d.%d", b.Channel, b.VC)
			}
			seen[b.Channel*8+b.VC] = true
		}
	}
	if info.DescribeCycle() == "" {
		t.Fatal("empty cycle description")
	}
	if len(info.Blocked) < len(info.Cycle) {
		t.Fatalf("Blocked (%d) smaller than Cycle (%d)", len(info.Blocked), len(info.Cycle))
	}
}

// TestVerifiedFunctionsCarryNoDiagnostic pins the negative: a verified
// function's run ends with a nil Result.Deadlock.
func TestVerifiedFunctionsCarryNoDiagnostic(t *testing.T) {
	f, tb := randomFn(t, 11, 12, 4, routing.UpDown{})
	res := run(t, f, tb, Config{
		PacketLength:  16,
		InjectionRate: 0.05,
		WarmupCycles:  200,
		MeasureCycles: 2000,
		Seed:          5,
	})
	if res.Deadlock != nil {
		t.Fatalf("verified function produced a deadlock diagnostic: %+v", res.Deadlock)
	}
	if err := res.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
