package wormsim

// Differential determinism tests: the event-driven engine (EngineEvent)
// must produce byte-identical results to the scan engine (EngineScan) for
// every scenario class the simulator supports — clean runs across modes,
// virtual channels, selection functions, traffic patterns, and loads; runs
// with mid-flight fault injection; runs under online deadlock recovery;
// and failing runs (deadlock, livelock), whose structured diagnostics and
// error strings must match too. "Byte-identical" is checked literally:
// the JSON encodings of the two Results are compared byte for byte, and so
// are the per-packet CSV traces.

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/traffic"
)

// diffDrive runs one simulator to completion; scenarios override it to
// interleave fault injection with RunCycles.
type diffDrive func(sim *Simulator) (*Result, error)

func driveRun(sim *Simulator) (*Result, error) { return sim.Run() }

// driveKills injects channel kills and a drop mid-run: a third of the way
// in it kills two channels, pauses injection for a stretch (static
// draining), drops whatever is still in flight, and resumes.
func driveKills(total int) diffDrive {
	return func(sim *Simulator) (*Result, error) {
		third := total / 3
		if err := sim.RunCycles(third); err != nil {
			return sim.Finish(), err
		}
		sim.KillChannel(0)
		sim.KillChannel(2)
		sim.PauseInjection(true)
		if err := sim.RunCycles(third); err != nil {
			return sim.Finish(), err
		}
		sim.DropInFlight()
		sim.PauseInjection(false)
		if err := sim.RunCycles(total - 2*third); err != nil {
			return sim.Finish(), err
		}
		return sim.Finish(), nil
	}
}

func TestEnginesByteIdentical(t *testing.T) {
	base := Config{
		PacketLength:  32,
		InjectionRate: 0.1,
		WarmupCycles:  500,
		MeasureCycles: 4000,
		Seed:          7,
	}
	at := func(mut func(c *Config)) Config {
		c := base
		mut(&c)
		return c
	}
	ring := func(n int) func(t *testing.T) (*routing.Function, *routing.Table) {
		return func(t *testing.T) (*routing.Function, *routing.Table) { return unrestrictedRing(t, n) }
	}
	net := func(seed uint64, ports int, alg routing.Algorithm) func(t *testing.T) (*routing.Function, *routing.Table) {
		return func(t *testing.T) (*routing.Function, *routing.Table) {
			return randomFn(t, seed, 32, ports, alg)
		}
	}
	// bigNet crosses the parallel engine's one-worker-per-64-switches clamp,
	// so its scenarios exercise real multi-worker execution (the 32-switch
	// matrix clamps to a single worker).
	bigNet := func(seed uint64, ports int, alg routing.Algorithm) func(t *testing.T) (*routing.Function, *routing.Table) {
		return func(t *testing.T) (*routing.Function, *routing.Table) {
			return randomFn(t, seed, 256, ports, alg)
		}
	}
	recoverRing := recoveringRingConfig()

	scenarios := []struct {
		name  string
		build func(t *testing.T) (*routing.Function, *routing.Table)
		cfg   Config
		drive diffDrive // nil = plain Run
		// workload builds a fresh closed-loop source per engine run (the
		// sources are stateful and single-use).
		workload func() ClosedLoop
		wantErr  bool
	}{
		{name: "downup/light", build: net(1, 4, core.DownUp{}), cfg: base},
		{name: "downup/seed2", build: net(2, 4, core.DownUp{}), cfg: at(func(c *Config) { c.Seed = 99 })},
		{name: "downup/saturated", build: net(3, 4, core.DownUp{}), cfg: at(func(c *Config) { c.InjectionRate = 0.6 })},
		{name: "lturn/light", build: net(1, 4, routing.LTurn{}), cfg: base},
		{name: "lturn/8port", build: net(4, 8, routing.LTurn{}), cfg: at(func(c *Config) { c.InjectionRate = 0.3 })},
		{name: "downup/2vc", build: net(5, 4, core.DownUp{}), cfg: at(func(c *Config) { c.VirtualChannels = 2; c.InjectionRate = 0.3 })},
		{name: "downup/4vc-depth2", build: net(6, 4, core.DownUp{}), cfg: at(func(c *Config) { c.VirtualChannels = 4; c.BufferDepth = 2 })},
		{name: "adaptive/random", build: net(7, 4, core.DownUp{}), cfg: at(func(c *Config) { c.Mode = Adaptive; c.InjectionRate = 0.3 })},
		{name: "adaptive/first", build: net(8, 4, core.DownUp{}), cfg: at(func(c *Config) { c.Mode = Adaptive; c.Select = SelectFirst })},
		{name: "adaptive/least-loaded-2vc", build: net(9, 4, core.DownUp{}), cfg: at(func(c *Config) { c.Mode = Adaptive; c.Select = SelectLeastLoaded; c.VirtualChannels = 2 })},
		{name: "deterministic", build: net(10, 4, core.DownUp{}), cfg: at(func(c *Config) { c.Mode = Deterministic })},
		{name: "bursty", build: net(11, 4, core.DownUp{}), cfg: at(func(c *Config) { c.MeanBurst = 4; c.InjectionRate = 0.2 })},
		{name: "hotspot", build: net(12, 4, core.DownUp{}), cfg: at(func(c *Config) { c.Pattern = traffic.Hotspot{N: 32, Spots: []int{3}, Fraction: 0.3} })},
		{name: "nowarmup", build: net(13, 4, core.DownUp{}), cfg: at(func(c *Config) { c.WarmupCycles = NoWarmup })},
		{name: "plen1", build: net(14, 4, core.DownUp{}), cfg: at(func(c *Config) { c.PacketLength = 1; c.InjectionRate = 0.05 })},
		{name: "faults/source-routed", build: net(15, 4, core.DownUp{}), cfg: base, drive: driveKills(base.WarmupCycles + base.MeasureCycles)},
		{name: "faults/adaptive", build: net(16, 4, core.DownUp{}), cfg: at(func(c *Config) { c.Mode = Adaptive }), drive: driveKills(base.WarmupCycles + base.MeasureCycles)},
		{name: "faults/2vc", build: net(17, 4, core.DownUp{}), cfg: at(func(c *Config) { c.VirtualChannels = 2; c.InjectionRate = 0.3 }), drive: driveKills(base.WarmupCycles + base.MeasureCycles)},
		{name: "closedloop/chain", build: net(18, 4, core.DownUp{}), cfg: at(func(c *Config) {
			c.InjectionRate = 0
			c.WarmupCycles = NoWarmup
			c.MeasureCycles = 60000
		}), workload: func() ClosedLoop { return newChainLoop(32, 40, 2) }},
		{name: "closedloop/fanout-adaptive", build: net(19, 4, core.DownUp{}), cfg: at(func(c *Config) {
			c.InjectionRate = 0
			c.Mode = Adaptive
			c.WarmupCycles = NoWarmup
			c.MeasureCycles = 20000
		}), workload: func() ClosedLoop { return newFanLoop(32) }},
		{name: "closedloop/tokens-2vc", build: net(20, 4, core.DownUp{}), cfg: at(func(c *Config) {
			c.InjectionRate = 0
			c.VirtualChannels = 2
			c.WarmupCycles = NoWarmup
			c.MeasureCycles = 8000
		}), workload: func() ClosedLoop { return newTokenRing(32, 12) }},
		{name: "recovery/ring4", build: ring(4), cfg: recoverRing},
		{name: "recovery/ring6-retries", build: ring(6), cfg: at(func(c *Config) {
			*c = recoveringRingConfig()
			c.MaxRetries = 1
			c.MeasureCycles = 30000
		})},
		{name: "deadlock/ring4", build: ring(4), cfg: at(func(c *Config) {
			c.PacketLength = 64
			c.BufferDepth = 2
			c.InjectionRate = 0.8
			c.WarmupCycles = NoWarmup
			c.MeasureCycles = 50000
			c.DeadlockThreshold = 5000
			c.Seed = 1
		}), wantErr: true},
		{name: "livelock/ring4", build: ring(4), cfg: at(func(c *Config) {
			c.PacketLength = 64
			c.BufferDepth = 2
			c.InjectionRate = 0.8
			c.WarmupCycles = NoWarmup
			c.MeasureCycles = 50000
			c.DeadlockThreshold = 20000
			c.LivelockThreshold = 500
			c.DetectInterval = 128
			c.Seed = 1
		}), wantErr: true},
		{name: "parallel/256sw", build: bigNet(21, 4, core.DownUp{}), cfg: at(func(c *Config) {
			c.InjectionRate = 0.3
			c.MeasureCycles = 2000
			c.Workers = 4
		})},
		{name: "parallel/256sw-adaptive-first", build: bigNet(22, 4, core.DownUp{}), cfg: at(func(c *Config) {
			c.Mode = Adaptive
			c.Select = SelectFirst
			c.MeasureCycles = 2000
			c.Workers = 4
		})},
	}

	if len(scenarios) < 26 {
		t.Fatalf("differential matrix shrank to %d scenarios; keep it at >= 26", len(scenarios))
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			drive := sc.drive
			if drive == nil {
				drive = driveRun
			}
			type outcome struct {
				res   *Result
				err   error
				trace bytes.Buffer
			}
			engines := Engines()
			out := make([]outcome, len(engines))
			for i, engine := range engines {
				fn, tb := sc.build(t)
				cfg := sc.cfg
				cfg.Engine = engine
				cfg.Trace = &out[i].trace
				if sc.workload != nil {
					cfg.Workload = sc.workload()
				}
				sim, err := New(fn, tb, cfg)
				if err != nil {
					t.Fatal(err)
				}
				out[i].res, out[i].err = drive(sim)
			}
			scan := out[0]
			if sc.wantErr && scan.err == nil {
				t.Fatal("scenario expected to fail but the scan engine succeeded")
			}
			if !sc.wantErr && scan.err != nil {
				t.Fatalf("scenario expected to succeed but failed: %v", scan.err)
			}
			for i, cur := range out[1:] {
				name := engines[i+1].String()
				if (scan.err != nil) != (cur.err != nil) {
					t.Fatalf("error mismatch: scan=%v %s=%v", scan.err, name, cur.err)
				}
				if scan.err != nil && scan.err.Error() != cur.err.Error() {
					t.Fatalf("error strings diverge:\nscan: %v\n%s: %v", scan.err, name, cur.err)
				}
				var de *DeadlockError
				var le *LivelockError
				if errors.As(scan.err, &de) {
					var de2 *DeadlockError
					if !errors.As(cur.err, &de2) || !reflect.DeepEqual(de.Info, de2.Info) {
						t.Fatalf("deadlock diagnostics diverge:\nscan: %+v\n%s: %+v", de.Info, name, de2)
					}
				}
				if errors.As(scan.err, &le) {
					var le2 *LivelockError
					if !errors.As(cur.err, &le2) || !reflect.DeepEqual(le.Info, le2.Info) {
						t.Fatalf("livelock diagnostics diverge:\nscan: %+v\n%s: %+v", le.Info, name, le2)
					}
				}
				if !reflect.DeepEqual(scan.res, cur.res) {
					t.Fatalf("results diverge:\nscan: %+v\n%s: %+v", scan.res, name, cur.res)
				}
				sj, err := json.Marshal(scan.res)
				if err != nil {
					t.Fatal(err)
				}
				cj, err := json.Marshal(cur.res)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(sj, cj) {
					t.Fatalf("JSON encodings diverge:\nscan: %s\n%s: %s", sj, name, cj)
				}
				if !bytes.Equal(scan.trace.Bytes(), cur.trace.Bytes()) {
					t.Fatalf("packet traces diverge vs %s (%d vs %d bytes)", name, scan.trace.Len(), cur.trace.Len())
				}
			}
			if scan.err == nil {
				// Conservation holds only for completed runs; aborted runs
				// carry partial counters by design.
				if err := scan.res.CheckConservation(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestEngineDefaultIsEvent pins the default: a zero Config selects the
// event-driven engine, the scan engine stays reachable, and out-of-range
// engines are rejected.
func TestEngineDefaultIsEvent(t *testing.T) {
	if (Config{}).withDefaults().Engine != EngineEvent {
		t.Fatal("zero Config no longer defaults to EngineEvent")
	}
	if EngineEvent.String() != "event" || EngineScan.String() != "scan" || EngineParallel.String() != "parallel" {
		t.Fatalf("engine names changed: %v, %v, %v", EngineEvent, EngineScan, EngineParallel)
	}
	if got := Engines(); len(got) != 3 || got[0] != EngineScan {
		t.Fatalf("Engines() = %v; want all three engines, scan baseline first", got)
	}
	f, tb := randomFn(t, 1, 8, 4, core.DownUp{})
	if _, err := New(f, tb, Config{Engine: Engine(7)}); err == nil {
		t.Fatal("Engine(7) accepted")
	}
	if _, err := New(f, tb, Config{Workers: -1}); err == nil {
		t.Fatal("negative Workers accepted")
	}
	sim, err := New(f, tb, Config{Engine: EngineScan, MeasureCycles: 100, WarmupCycles: NoWarmup})
	if err != nil {
		t.Fatal(err)
	}
	if sim.ev != nil {
		t.Fatal("scan engine carries event scheduling state")
	}
}
