package wormsim

// The event-driven engine (Config.Engine == EngineEvent). The scan engine
// walks every virtual-channel lane of every switch on every cycle; almost
// all of those visits find an empty buffer and do nothing. This engine
// tracks exactly the places where work can happen and visits only those:
//
//   - filled-wire worklists: a wire holds a flit for exactly one cycle
//     (credit-based flow control reserves the downstream buffer before the
//     flit enters the wire, and processors always consume), so the wires
//     filled during cycle t are precisely the wires the link stage and the
//     delivery stage must touch at t+1. Two append-only lists per cycle —
//     one for ejection wires (consumed in ascending-node order, which is
//     the order switchStage fills them in), one for everything else —
//     replace the O(channels) wire scans.
//
//   - active-lane bitmasks: a per-switch bitmask over its input lanes
//     (set on buffer push, cleared when a visit finds the buffer empty)
//     plus a bitmask over switches with any active lane replace the
//     O(channels x VCs) crossbar scan. Blocked lanes stay active — a head
//     flit waiting on credit must be retried every cycle — so the cost is
//     O(occupied lanes), the quantity the paper's own saturation story is
//     about.
//
//   - an active-source bitmask: nodes whose source queue holds a packet.
//
// Everything is flat slice-backed — no maps, no per-cycle allocation in
// steady state (enforced by TestSteadyStateAllocs).
//
// Determinism is the hard constraint (the differential tests compare both
// engines byte for byte). The invariants that make the engines identical:
//
//   - Visiting an idle resource in the scan engine has no side effects and
//     draws no randomness, so skipping it cannot change the schedule.
//   - Active resources are visited in the scan engine's order: lanes in
//     each switch's round-robin order (the round-robin pointer advances
//     once per cycle unconditionally in the scan engine, so it equals
//     (cycle-1) mod lanes and needs no per-switch state here), switches
//     and sources in ascending order, ejection wires in ascending node
//     order.
//   - Membership is conservative: a lane/wire/source may be listed with
//     nothing to do (the shared per-item bodies re-check and no-op, which
//     also absorbs fault injection and recovery aborts that drain
//     resources between cycles), but anything with work to do is always
//     listed.

import "math/bits"

// evState is the event-driven engine's scheduling state. It lives beside
// the Simulator's physics state and never influences it — only which
// resources get visited, never what happens at a visit.
type evState struct {
	// laneSwitch and lanePos map an input vclane to the switch owning it
	// and its bit position within that switch's lane mask (-1 / unused for
	// ejection lanes, which are not crossbar inputs).
	laneSwitch []int32
	lanePos    []int32
	// laneWords[v] is the active-lane bitmask of switch v, one bit per
	// entry of inVCLs[v]: set when the lane's buffer may be non-empty.
	laneWords [][]uint64
	// switchWords is the active-switch bitmask: set while any lane bit of
	// the switch is set.
	switchWords []uint64
	// srcWords is the active-source bitmask: set while the node's source
	// queue may hold a packet.
	srcWords []uint64
	// readyEject/readyOther are last cycle's filled-wire lists, consumed by
	// the delivery and link stages (the current cycle's fills collect in
	// wctx, and stepEvent swaps the pairs). Ejection fills happen in
	// ascending node order (switchStage processes switches in order and
	// only switch v fills v's ejection wire), matching the scan engine's
	// delivery order. The parallel engine keeps its per-worker ready lists
	// in parState instead.
	readyEject []int32
	readyOther []int32
}

// newEvState builds the scheduling state for s; all sets start empty to
// match the empty network.
func newEvState(s *Simulator) *evState {
	ev := &evState{
		laneSwitch:  make([]int32, s.vcls),
		lanePos:     make([]int32, s.vcls),
		laneWords:   make([][]uint64, s.n),
		switchWords: make([]uint64, (s.n+63)/64),
		srcWords:    make([]uint64, (s.n+63)/64),
	}
	for i := range ev.laneSwitch {
		ev.laneSwitch[i] = -1
		ev.lanePos[i] = -1
	}
	for v := 0; v < s.n; v++ {
		lanes := s.inVCLs[v]
		ev.laneWords[v] = make([]uint64, (len(lanes)+63)/64)
		for p, li := range lanes {
			ev.laneSwitch[li] = int32(v)
			ev.lanePos[li] = int32(p)
		}
	}
	return ev
}

// markLane wakes the input lane li (its buffer just received a flit) and
// the switch owning it.
func (ev *evState) markLane(li int32) {
	v := ev.laneSwitch[li]
	p := ev.lanePos[li]
	ev.laneWords[v][p>>6] |= 1 << (uint(p) & 63)
	ev.switchWords[v>>6] |= 1 << (uint(v) & 63)
}

// markSource wakes node v's injection feed (its queue just received a
// packet).
func (ev *evState) markSource(v int) {
	ev.srcWords[v>>6] |= 1 << (uint(v) & 63)
}

// stepEvent runs one cycle under the event-driven engine: the same stage
// order as the scan engine (deliver, link, switch, feed, generate), each
// stage iterating its worklist instead of the whole network.
func (s *Simulator) stepEvent() {
	ev := s.ev
	wx := &s.wk[0]
	ev.readyEject, wx.fillEject = wx.fillEject, ev.readyEject[:0]
	ev.readyOther, wx.fillOther = wx.fillOther, ev.readyOther[:0]
	ejBase := s.nCh + s.n
	for _, w := range ev.readyEject {
		s.deliverEject(int(w) - ejBase)
	}
	for _, w := range ev.readyOther {
		s.linkWire(wx, int(w))
	}
	s.switchStageEvent(wx)
	s.feedInjectionEvent(wx)
	s.generate()
}

// switchStageEvent visits every switch with at least one active input
// lane, in ascending order.
func (s *Simulator) switchStageEvent(wx *wctx) {
	ev := s.ev
	for wi, word := range ev.switchWords {
		base := wi << 6
		for word != 0 {
			v := base + bits.TrailingZeros64(word)
			word &= word - 1
			if s.switchEvent(wx, v) {
				ev.switchWords[wi] &^= 1 << (uint(v) & 63)
			}
		}
	}
}

// switchEvent runs the crossbar stage of one switch over its active lanes
// in round-robin order, pruning lanes whose buffers turn out (or end up)
// empty. It reports whether the switch went fully idle.
func (s *Simulator) switchEvent(wx *wctx, v int) bool {
	ev := s.ev
	lanes := s.inVCLs[v]
	words := ev.laneWords[v]
	start := (s.cycle - 1) % len(lanes) // == the scan engine's rr[v] this cycle
	ord := appendSetBits(wx.ord[:0], words, start, len(lanes))
	ord = appendSetBits(ord, words, 0, start)
	wx.ord = ord
	idle := true
	for _, p := range ord {
		li := lanes[p]
		s.tryForward(wx, v, li)
		if s.bufs[li].empty() {
			words[p>>6] &^= 1 << (uint(p) & 63)
		} else {
			idle = false
		}
	}
	return idle
}

// feedInjectionEvent visits every node with a (possibly) non-empty source
// queue, in ascending order, retiring nodes that have nothing to inject.
func (s *Simulator) feedInjectionEvent(wx *wctx) {
	ev := s.ev
	for wi, word := range ev.srcWords {
		base := wi << 6
		for word != 0 {
			v := base + bits.TrailingZeros64(word)
			word &= word - 1
			if s.feedNode(wx, v) {
				ev.srcWords[wi] &^= 1 << (uint(v) & 63)
			}
		}
	}
}

// appendSetBits appends to dst the positions of the set bits of words in
// the half-open range [lo, hi), in ascending order.
func appendSetBits(dst []int32, words []uint64, lo, hi int) []int32 {
	if lo >= hi {
		return dst
	}
	first, last := lo>>6, (hi-1)>>6
	for wi := first; wi <= last; wi++ {
		w := words[wi]
		if wi == first {
			w &= ^uint64(0) << (uint(lo) & 63)
		}
		if wi == last && hi&63 != 0 {
			w &= (1 << (uint(hi) & 63)) - 1
		}
		base := wi << 6
		for w != 0 {
			dst = append(dst, int32(base+bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}
