package wormsim_test

import (
	"fmt"

	"repro/internal/cgraph"
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/wormsim"
)

// ExampleSimulator drives the flit-level simulator stepwise: build a
// verified routing function, run the simulation in slices (a caller could
// inject faults or reconfigure between them), and read the final counters.
func ExampleSimulator() {
	g := topology.Ring(8)
	tr, err := ctree.Build(g, ctree.M1, nil)
	if err != nil {
		panic(err)
	}
	fn, err := core.DownUp{}.Build(cgraph.Build(tr))
	if err != nil {
		panic(err)
	}
	if err := fn.Verify(); err != nil {
		panic(err)
	}
	sim, err := wormsim.New(fn, routing.NewTable(fn), wormsim.Config{
		PacketLength:  8,
		InjectionRate: 0.1,
		WarmupCycles:  wormsim.NoWarmup,
		MeasureCycles: 2000,
		Seed:          1,
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 2; i++ {
		if err := sim.RunCycles(1000); err != nil {
			panic(err)
		}
	}
	res := sim.Finish()
	if err := res.CheckConservation(); err != nil {
		panic(err)
	}
	fmt.Printf("delivered %d packets, %d flits still in flight\n",
		res.PacketsDelivered, res.InFlightAtEnd)
	fmt.Printf("accepted %.3f flits/clock/node\n", res.AcceptedTraffic)
	// Output:
	// delivered 196 packets, 12 flits still in flight
	// accepted 0.098 flits/clock/node
}
