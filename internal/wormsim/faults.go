package wormsim

// Fault injection: the mechanisms a reconfiguration driver (package fault)
// composes into live link/switch failure scenarios. The simulator keeps its
// original geometry — channels of the communication graph it was built on —
// and killed resources simply stop accepting flits; a rebuilt routing
// function for the surviving topology is installed with Rewire, expressed
// in the original channel ids (package fault provides the remapping).
//
// All operations here are deterministic: packets are dropped in ascending
// id order, and every count flows into the Result so the conservation law
// (Result.CheckConservation) stays checkable.

import (
	"fmt"
	"sort"

	"repro/internal/routing"
)

// PauseInjection suspends (or resumes) the injection of new packets.
// Packets already streaming their flits finish; sources keep generating
// into their queues (the offered load does not pause), which is the static
// draining discipline of off-line reconfiguration.
func (s *Simulator) PauseInjection(pause bool) { s.paused = pause }

// Faulted reports whether any fault has been injected into this run.
func (s *Simulator) Faulted() bool { return s.faulted }

// FaultCounters returns the running fault-loss counters (packets dropped,
// flits dropped, packets unroutable); drivers diff them around an event to
// attribute losses per fault.
func (s *Simulator) FaultCounters() (int, int64, int) {
	return s.res.PacketsDropped, s.res.FlitsDropped, s.res.PacketsUnroutable
}

// KillChannel kills one directed switch-to-switch channel (a cgraph channel
// id of the simulator's communication graph) and removes every packet the
// failure severs: packets holding one of the channel's virtual channels,
// packets with flits buffered on or crossing it, and source-routed packets
// whose remaining route needs it. It returns the number of packets dropped.
// Killing a channel twice is a no-op the second time.
func (s *Simulator) KillChannel(ch int) int {
	if ch < 0 || ch >= s.nCh {
		panic(fmt.Sprintf("wormsim: KillChannel(%d) outside [0,%d)", ch, s.nCh))
	}
	if s.deadWire[ch] {
		return 0
	}
	s.faulted = true
	s.deadWire[ch] = true
	victims := make(map[int32]struct{})
	// Packets physically on the channel: owners of its lanes, flits in its
	// lane buffers, the flit on its wire.
	for vc := 0; vc < s.nVC; vc++ {
		l := int32(ch*s.nVC + vc)
		if s.owner[l] != noOwner {
			victims[s.owner[l]] = struct{}{}
		}
		b := &s.bufs[l]
		for i := 0; i < b.size; i++ {
			victims[b.buf[(b.head+i)%len(b.buf)].pkt] = struct{}{}
		}
	}
	if s.wireFull[ch] {
		victims[s.wire[ch].pkt] = struct{}{}
	}
	// Source-routed packets whose remaining route crosses the channel:
	// anything active in the network or still queued at a source.
	s.forEachActivePacket(func(pid int32) {
		p := &s.packets[pid]
		for i := p.hop; i < int32(len(p.route)); i++ {
			if p.route[i] == int32(ch) {
				victims[pid] = struct{}{}
				return
			}
		}
	})
	return s.dropAll(victims)
}

// KillLink kills both directed channels of the bidirectional link (u, v),
// returning the number of packets dropped. It errors if the link does not
// exist in the simulator's communication graph.
func (s *Simulator) KillLink(u, v int) (int, error) {
	a, ok := s.cg.ChannelID(u, v)
	if !ok {
		return 0, fmt.Errorf("wormsim: no link (%d,%d) to kill", u, v)
	}
	b, _ := s.cg.ChannelID(v, u)
	return s.KillChannel(a) + s.KillChannel(b), nil
}

// KillSwitch kills switch v: every incident channel, its injection and
// ejection ports, every packet queued at it, and every in-network packet
// destined to it. The node stops generating traffic. It returns the number
// of packets dropped.
func (s *Simulator) KillSwitch(v int) int {
	if v < 0 || v >= s.n {
		panic(fmt.Sprintf("wormsim: KillSwitch(%d) outside [0,%d)", v, s.n))
	}
	if s.deadNode[v] {
		return 0
	}
	s.faulted = true
	s.deadNode[v] = true
	dropped := 0
	for _, c := range s.cg.Out[v] {
		dropped += s.KillChannel(c)
	}
	for _, c := range s.cg.In[v] {
		dropped += s.KillChannel(c)
	}
	victims := make(map[int32]struct{})
	// Packets queued (or mid-injection) at the dead switch.
	for i := s.qHead[v]; i < len(s.queues[v]); i++ {
		victims[s.queues[v][i]] = struct{}{}
	}
	// In-network packets destined to the dead switch (adaptive packets
	// carry no route, so the channel kills above cannot catch them all).
	s.forEachActivePacket(func(pid int32) {
		if s.packets[pid].dst == int32(v) {
			victims[pid] = struct{}{}
		}
	})
	// The node's injection/ejection wires go dead with it.
	s.deadWire[s.vclWire(s.injVCL(v))] = true
	s.deadWire[s.vclWire(s.ejectVCL(v))] = true
	return dropped + s.dropAll(victims)
}

// Rewire installs a new path source — a routing function rebuilt for the
// surviving topology, expressed in the simulator's original channel ids —
// and re-routes every queued packet that has not started injecting yet
// (their routes were sampled under the old function). Queued packets whose
// destination is unreachable under the new function are dropped and counted
// in Result.PacketsUnroutable. It returns that count.
//
// Callers are responsible for draining or dropping in-flight packets first:
// mixing packets routed under the old and new functions can deadlock even
// when both functions are individually deadlock-free (the reason static
// reconfiguration drains).
func (s *Simulator) Rewire(tb routing.PathSource) int {
	s.faulted = true
	s.tb = tb
	unroutable := 0
	for v := 0; v < s.n; v++ {
		if s.deadNode[v] {
			continue
		}
		for i := s.qHead[v]; i < len(s.queues[v]); i++ {
			pid := s.queues[v][i]
			p := &s.packets[pid]
			if p.dropped || p.sentFlits > 0 {
				continue
			}
			if ok := s.reroute(v, p); !ok {
				p.dropped = true
				p.route = nil
				unroutable++
			}
		}
	}
	s.res.PacketsUnroutable += unroutable
	return unroutable
}

// reroute resamples p's route under the current path source, returning
// false if the destination is unreachable.
func (s *Simulator) reroute(v int, p *packet) bool {
	switch s.cfg.Mode {
	case SourceRouted, Deterministic:
		var path []int
		var err error
		if s.cfg.Mode == SourceRouted {
			path, err = s.tb.SamplePath(v, int(p.dst), s.pathRng[v])
		} else {
			path, err = s.tb.FixedPath(v, int(p.dst))
		}
		if err != nil {
			return false
		}
		p.route = p.route[:0]
		for _, c := range path {
			p.route = append(p.route, int32(c))
		}
		p.hop = 0
		return true
	default: // Adaptive: no stored route; probe reachability. Rewire runs
		// between cycles on the caller goroutine, so wk[0]'s scratch is free.
		wx := &s.wk[0]
		wx.candBuf = s.tb.NextChannels(int(p.dst), routing.InjectionState(v), wx.candBuf[:0])
		return len(wx.candBuf) > 0
	}
}

// DropInFlight removes every packet that currently has flits inside the
// network (the drop-everything recovery policy), returning the number of
// packets dropped. Queued packets that have not started injecting survive.
func (s *Simulator) DropInFlight() int {
	s.faulted = true
	victims := make(map[int32]struct{})
	s.forEachActivePacket(func(pid int32) {
		p := &s.packets[pid]
		if p.sentFlits > p.delivered || (p.sentFlits > 0 && p.sentFlits < p.length) {
			victims[pid] = struct{}{}
		}
	})
	return s.dropAll(victims)
}

// forEachActivePacket calls fn once per packet that is queued at a source
// or has flits inside the network, in no particular order (callers that
// need determinism must sort). Dropped packets are skipped.
func (s *Simulator) forEachActivePacket(fn func(pid int32)) {
	seen := make(map[int32]struct{})
	visit := func(pid int32) {
		if _, dup := seen[pid]; dup || s.packets[pid].dropped {
			return
		}
		seen[pid] = struct{}{}
		fn(pid)
	}
	for v := 0; v < s.n; v++ {
		for i := s.qHead[v]; i < len(s.queues[v]); i++ {
			visit(s.queues[v][i])
		}
	}
	for l := range s.bufs {
		b := &s.bufs[l]
		for i := 0; i < b.size; i++ {
			visit(b.buf[(b.head+i)%len(b.buf)].pkt)
		}
	}
	for w := 0; w < s.wires; w++ {
		if s.wireFull[w] {
			visit(s.wire[w].pkt)
		}
	}
}

// dropAll drops a set of packets in ascending id order (determinism) and
// returns how many were dropped.
func (s *Simulator) dropAll(victims map[int32]struct{}) int {
	if len(victims) == 0 {
		return 0
	}
	ids := make([]int32, 0, len(victims))
	for pid := range victims {
		ids = append(ids, pid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	dropped := 0
	for _, pid := range ids {
		if s.dropPacket(pid) {
			dropped++
		}
	}
	return dropped
}

// dropPacket removes one packet from the simulation: its flits leave every
// buffer and wire, its virtual-channel allocations are released, and the
// drop is counted. Reports whether the packet was actually dropped (false
// if it was dropped before).
func (s *Simulator) dropPacket(pid int32) bool {
	p := &s.packets[pid]
	if p.dropped {
		return false
	}
	p.dropped = true
	removed := s.removePacketFlits(pid)
	s.res.PacketsDropped++
	s.res.FlitsDropped += int64(removed)
	s.lastMove = s.now // topology change counts as progress for the watchdog
	p.route = nil
	return true
}

// removePacketFlits pulls every flit of one packet out of the network —
// buffers, wires, virtual-channel allocations, streaming bindings — and
// returns the number of flits removed. It is the shared core of fault
// drops and recovery aborts; the caller owns the accounting.
func (s *Simulator) removePacketFlits(pid int32) int {
	p := &s.packets[pid]
	// Release input-lane streaming bindings before ownership: a lane whose
	// nextOut lane is owned by this packet was carrying its flits.
	for li := range s.nextOut {
		if out := s.nextOut[li]; out != noVCL && s.owner[out] == pid {
			s.nextOut[li] = noVCL
		}
	}
	for l := range s.owner {
		if s.owner[l] == pid {
			s.owner[l] = noOwner
		}
	}
	removed := 0
	for l := range s.bufs {
		b := &s.bufs[l]
		if b.buf == nil || b.size == 0 {
			continue
		}
		n := b.size
		for i := 0; i < n; i++ {
			f := b.pop()
			if f.pkt == pid {
				removed++
			} else {
				b.push(f)
			}
		}
	}
	for w := 0; w < s.wires; w++ {
		if s.wireFull[w] && s.wire[w].pkt == pid {
			s.wireFull[w] = false
			removed++
		}
	}
	s.inFlight -= removed
	if want := int(p.sentFlits - p.delivered); removed != want {
		panic(fmt.Sprintf("wormsim: removing packet %d removed %d flits, expected %d (accounting broken)",
			pid, removed, want))
	}
	return removed
}
