package wormsim

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// FuzzConfig drives the simulator with arbitrary configurations on a small
// verified network: it must either reject the config or complete without
// panicking, and never deliver more flits than were created.
func FuzzConfig(f *testing.F) {
	f.Add(8, 2, 1, 0.1, 100, 500, 0, 0)
	f.Add(1, 1, 1, 0.9, -1, 1000, 1, 1)
	f.Add(128, 4, 8, 0.5, 50, 200, 2, 2)
	f.Add(0, 0, 0, 0.0, 0, 0, 0, 0)
	f.Add(16, -3, 9, 1.5, -5, -2, 99, 99)

	g := topology.Petersen()
	fn, tb := buildFn(f, g, routing.UpDown{})

	f.Fuzz(func(t *testing.T, plen, depth, vcs int, rate float64, warmup, measure, mode, sel int) {
		if measure > 20000 || measure < -10 || plen > 1<<16 || warmup > 20000 {
			return // keep runtime bounded
		}
		cfg := Config{
			PacketLength:    plen,
			BufferDepth:     depth,
			VirtualChannels: vcs,
			InjectionRate:   rate,
			Mode:            Mode(mode % 3),
			Select:          Selection(sel % 3),
			WarmupCycles:    warmup,
			MeasureCycles:   measure,
			Seed:            1,
		}
		sim, err := New(fn, tb, cfg)
		if err != nil {
			return // rejected: fine
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("verified function reported %v under %+v", err, cfg)
		}
		created := int64(res.PacketsCreated) * int64(sim.cfg.PacketLength)
		if res.FlitsDelivered < 0 || (res.FlitsDelivered > created && sim.cfg.WarmupCycles == 0) {
			t.Fatalf("conservation violated: delivered %d, created %d", res.FlitsDelivered, created)
		}
	})
}
