package wormsim

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/routing"
)

func TestDeterministicMode(t *testing.T) {
	f, tb := randomFn(t, 61, 24, 4, core.DownUp{})
	cfg := Config{
		PacketLength:  16,
		Mode:          Deterministic,
		InjectionRate: 0.1,
		WarmupCycles:  500,
		MeasureCycles: 4000,
		Seed:          3,
	}
	res := run(t, f, tb, cfg)
	if res.PacketsDelivered == 0 {
		t.Fatal("deterministic mode delivered nothing")
	}
	if Deterministic.String() != "deterministic" {
		t.Fatal("mode name wrong")
	}
}

func TestDeterministicVsRandomTieBreak(t *testing.T) {
	// At saturating load the random tie-break should not do worse than the
	// fixed-path selection (it spreads load over equal-length paths); allow
	// a little noise.
	f, tb := randomFn(t, 63, 40, 4, core.DownUp{})
	var acc [2]float64
	for i, mode := range []Mode{Deterministic, SourceRouted} {
		res := run(t, f, tb, Config{
			PacketLength:  32,
			Mode:          mode,
			InjectionRate: 0.4,
			WarmupCycles:  2000,
			MeasureCycles: 6000,
			Seed:          5,
		})
		acc[i] = res.AcceptedTraffic
	}
	if acc[1] < acc[0]*0.95 {
		t.Fatalf("random tie-break (%.4f) clearly worse than deterministic (%.4f)", acc[1], acc[0])
	}
}

func TestFixedPathStability(t *testing.T) {
	f, tb := randomFn(t, 65, 20, 4, routing.LTurn{})
	for trial := 0; trial < 50; trial++ {
		src, dst := trial%20, (trial*7+3)%20
		if src == dst {
			continue
		}
		a, err := tb.FixedPath(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		b, err := tb.FixedPath(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatal("fixed path not stable")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("fixed path not stable")
			}
		}
		if len(a) != tb.Distance(src, dst) {
			t.Fatal("fixed path not shortest")
		}
	}
	_ = f
}

func TestPacketTrace(t *testing.T) {
	f, tb := randomFn(t, 67, 16, 4, routing.UpDown{})
	var sb strings.Builder
	cfg := Config{
		PacketLength:  8,
		InjectionRate: 0.05,
		WarmupCycles:  NoWarmup,
		MeasureCycles: 4000,
		Seed:          9,
		Trace:         &sb,
	}
	res := run(t, f, tb, cfg)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "pkt,src,dst,created,injected,delivered,hops" {
		t.Fatalf("trace header %q", lines[0])
	}
	if len(lines)-1 != res.PacketsDelivered {
		t.Fatalf("%d trace lines for %d delivered packets", len(lines)-1, res.PacketsDelivered)
	}
	// Spot-check a line: seven comma-separated fields, hops >= 1.
	fields := strings.Split(lines[1], ",")
	if len(fields) != 7 {
		t.Fatalf("trace line %q", lines[1])
	}
}

func TestSourceQueuePeak(t *testing.T) {
	f, tb := randomFn(t, 69, 16, 4, routing.UpDown{})
	low := run(t, f, tb, Config{
		PacketLength: 16, InjectionRate: 0.02,
		WarmupCycles: 500, MeasureCycles: 4000, Seed: 3,
	})
	high := run(t, f, tb, Config{
		PacketLength: 16, InjectionRate: 0.9,
		WarmupCycles: 500, MeasureCycles: 4000, Seed: 3,
	})
	if high.SourceQueuePeak <= low.SourceQueuePeak {
		t.Fatalf("saturated queue peak %d not above light-load peak %d",
			high.SourceQueuePeak, low.SourceQueuePeak)
	}
}

func TestSelectionPolicies(t *testing.T) {
	f, tb := randomFn(t, 71, 32, 4, core.DownUp{})
	results := map[Selection]*Result{}
	for _, sel := range []Selection{SelectRandom, SelectFirst, SelectLeastLoaded} {
		res := run(t, f, tb, Config{
			PacketLength:  32,
			Mode:          Adaptive,
			Select:        sel,
			InjectionRate: 0.3,
			WarmupCycles:  1000,
			MeasureCycles: 5000,
			Seed:          3,
		})
		if res.PacketsDelivered == 0 {
			t.Fatalf("selection %v delivered nothing", sel)
		}
		results[sel] = res
	}
	// The congestion-aware selection should not be clearly worse than the
	// load-concentrating one.
	if results[SelectLeastLoaded].AcceptedTraffic < results[SelectFirst].AcceptedTraffic*0.9 {
		t.Fatalf("least-loaded (%.4f) much worse than first-free (%.4f)",
			results[SelectLeastLoaded].AcceptedTraffic, results[SelectFirst].AcceptedTraffic)
	}
	if SelectRandom.String() != "random" || SelectFirst.String() != "first" || SelectLeastLoaded.String() != "least-loaded" {
		t.Fatal("selection names wrong")
	}
}

func TestSelectionDeterministic(t *testing.T) {
	f, tb := randomFn(t, 73, 20, 4, routing.LTurn{})
	cfg := Config{
		PacketLength:  16,
		Mode:          Adaptive,
		Select:        SelectLeastLoaded,
		InjectionRate: 0.2,
		WarmupCycles:  500,
		MeasureCycles: 3000,
		Seed:          7,
	}
	a := run(t, f, tb, cfg)
	b := run(t, f, tb, cfg)
	if a.FlitsDelivered != b.FlitsDelivered || a.AvgLatency != b.AvgLatency {
		t.Fatal("least-loaded selection not deterministic")
	}
}

func TestBurstyTrafficLatencyPenalty(t *testing.T) {
	// Same offered load: bursty arrivals must raise average latency over
	// Bernoulli arrivals (deeper transient queues).
	f, tb := randomFn(t, 75, 32, 4, core.DownUp{})
	base := run(t, f, tb, Config{
		PacketLength: 16, InjectionRate: 0.15,
		WarmupCycles: 2000, MeasureCycles: 8000, Seed: 5,
	})
	bursty := run(t, f, tb, Config{
		PacketLength: 16, InjectionRate: 0.15, MeanBurst: 16,
		WarmupCycles: 2000, MeasureCycles: 8000, Seed: 5,
	})
	if bursty.PacketsDelivered == 0 {
		t.Fatal("bursty run delivered nothing")
	}
	if bursty.AvgLatency < base.AvgLatency*1.1 {
		t.Fatalf("bursty latency %.1f not clearly above smooth %.1f",
			bursty.AvgLatency, base.AvgLatency)
	}
	// Offered rates must roughly agree.
	if bursty.OfferedTraffic < base.OfferedTraffic*0.7 || bursty.OfferedTraffic > base.OfferedTraffic*1.3 {
		t.Fatalf("offered mismatch: %.4f vs %.4f", bursty.OfferedTraffic, base.OfferedTraffic)
	}
}

func TestBurstyRejectsBadRate(t *testing.T) {
	f, tb := randomFn(t, 77, 8, 3, routing.UpDown{})
	if _, err := New(f, tb, Config{InjectionRate: 0, MeanBurst: 4, MeasureCycles: 100}); err == nil {
		t.Fatal("bursty with zero rate accepted")
	}
}

func TestLatencyPercentiles(t *testing.T) {
	f, tb := randomFn(t, 79, 24, 4, core.DownUp{})
	res := run(t, f, tb, Config{
		PacketLength:  16,
		InjectionRate: 0.2,
		WarmupCycles:  1000,
		MeasureCycles: 6000,
		Seed:          3,
	})
	if res.P50Latency <= 0 || res.P95Latency < res.P50Latency || res.P99Latency < res.P95Latency {
		t.Fatalf("percentile ordering broken: p50=%d p95=%d p99=%d",
			res.P50Latency, res.P95Latency, res.P99Latency)
	}
	if res.P99Latency > res.MaxLatency || res.P50Latency < res.MinLatency {
		t.Fatalf("percentiles outside [min,max]: %+v", res)
	}
	// The mean must sit between p50-ish and max.
	if res.AvgLatency > float64(res.MaxLatency) || res.AvgLatency < float64(res.MinLatency) {
		t.Fatal("mean outside bounds")
	}
}
