package wormsim

// Co-simulation oracle hooks. An external workload engine coupled over the
// cosim protocol (package cosim, docs/COSIM.md) needs three things from the
// simulator beyond plain Run: advancing to an exact cycle (RunCycles already
// provides that), injecting a one-off "probe" transfer and measuring its
// delivery latency under whatever background traffic is in flight, and
// reading the live counters without finishing the run.
//
// The hard requirement is non-perturbation: asking the oracle a question
// must not change the background traffic's randomness. Probe path sampling
// therefore draws from a dedicated RNG stream (Simulator.probeRng, split
// from the root seed after every background stream), so the per-node
// arrival and path streams see exactly the draws they would have seen
// without the probe. The probe still occupies real channels — contending
// with background packets is the point of a timing oracle — so the
// *physical* state after a probe differs, deterministically, from a run
// without it; docs/COSIM.md spells out this distinction.

import (
	"fmt"

	"repro/internal/routing"
)

// probeRec is the simulator-side record of one injected probe.
type probeRec struct {
	pkt         int32 // index into Simulator.packets
	deliveredAt int32 // cycle the tail flit was consumed; -1 until then
	hops        int32 // switch-to-switch channels the header traversed
}

// ProbeStatus is the observable state of one injected probe.
type ProbeStatus struct {
	// ID is the probe id InjectProbe returned.
	ID int64
	// Src and Dst are the probe's endpoints.
	Src, Dst int
	// Flits is the probe's packet length in flits.
	Flits int
	// Created is the cycle the probe entered its source queue.
	Created int
	// Injected is the cycle its header entered the injection channel, or
	// -1 while it is still queued behind background packets.
	Injected int
	// Delivered is the cycle its tail flit was consumed by the destination
	// processor, or -1 while it is still in flight or queued.
	Delivered int
	// Hops is the number of switch-to-switch channels the header traversed
	// (valid once Delivered >= 0).
	Hops int
}

// Latency is the probe's source-queue-inclusive latency (creation to tail
// delivery), the paper's message-latency definition, or -1 if the probe has
// not been delivered yet.
func (p ProbeStatus) Latency() int {
	if p.Delivered < 0 {
		return -1
	}
	return p.Delivered - p.Created
}

// NetworkLatency excludes source queueing (header injection to tail
// delivery), or -1 if the probe has not been delivered yet.
func (p ProbeStatus) NetworkLatency() int {
	if p.Delivered < 0 || p.Injected < 0 {
		return -1
	}
	return p.Delivered - p.Injected
}

// InjectProbe queues one probe packet of the given length from src to dst,
// to be injected by the normal source machinery starting next cycle, and
// returns its probe id. Call it between RunCycles calls, never concurrently
// with them. The probe's path is sampled from the dedicated probe stream
// (SourceRouted), fixed (Deterministic), or chosen hop by hop (Adaptive) —
// background RNG streams are never touched. Probes are incompatible with
// closed-loop workloads (Config.Workload), which own the tag namespace.
func (s *Simulator) InjectProbe(src, dst, flits int) (int64, error) {
	if s.finished {
		return 0, fmt.Errorf("wormsim: InjectProbe after Finish")
	}
	if s.cfg.Workload != nil {
		return 0, fmt.Errorf("wormsim: InjectProbe is incompatible with a closed-loop Workload")
	}
	if src < 0 || src >= s.n || dst < 0 || dst >= s.n {
		return 0, fmt.Errorf("wormsim: probe endpoints %d->%d outside [0,%d)", src, dst, s.n)
	}
	if src == dst {
		return 0, fmt.Errorf("wormsim: probe source %d equals destination", src)
	}
	if s.deadNode[src] || s.deadNode[dst] {
		return 0, fmt.Errorf("wormsim: probe endpoint %d->%d is a killed switch", src, dst)
	}
	if flits < 1 {
		return 0, fmt.Errorf("wormsim: probe length %d < 1 flit", flits)
	}
	var route []int32
	switch s.cfg.Mode {
	case SourceRouted:
		path, err := s.tb.SamplePath(src, dst, s.probeRng)
		if err != nil {
			return 0, fmt.Errorf("wormsim: probe %d->%d unroutable: %w", src, dst, err)
		}
		route = make([]int32, len(path))
		for i, c := range path {
			route[i] = int32(c)
		}
	case Deterministic:
		path, err := s.tb.FixedPath(src, dst)
		if err != nil {
			return 0, fmt.Errorf("wormsim: probe %d->%d unroutable: %w", src, dst, err)
		}
		route = make([]int32, len(path))
		for i, c := range path {
			route[i] = int32(c)
		}
	default: // Adaptive: no precomputed route, but refuse unreachable pairs.
		wx := &s.wk[0]
		if wx.candBuf = s.tb.NextChannels(dst, routing.InjectionState(src), wx.candBuf[:0]); len(wx.candBuf) == 0 {
			return 0, fmt.Errorf("wormsim: probe %d->%d unroutable", src, dst)
		}
	}
	id := int64(len(s.probes))
	s.probes = append(s.probes, probeRec{pkt: int32(len(s.packets)), deliveredAt: -1})
	s.commitPacket(src, dst, id, route, int32(flits))
	return id, nil
}

// Probe reports the current state of a probe injected earlier; ok is false
// for an unknown id.
func (s *Simulator) Probe(id int64) (ProbeStatus, bool) {
	if id < 0 || id >= int64(len(s.probes)) {
		return ProbeStatus{}, false
	}
	rec := &s.probes[id]
	p := &s.packets[rec.pkt]
	st := ProbeStatus{
		ID:        id,
		Src:       int(p.src),
		Dst:       int(p.dst),
		Flits:     int(p.length),
		Created:   int(p.created),
		Injected:  int(p.injected),
		Delivered: int(rec.deliveredAt),
		Hops:      int(p.hops),
	}
	if rec.deliveredAt >= 0 {
		st.Hops = int(rec.hops)
	}
	return st, true
}

// RunUntilProbe advances the simulation one cycle at a time until the probe
// is delivered, stopping exactly at its delivery cycle (so a replayed frame
// sequence leaves the simulator in an identical state), and returns its
// final status. It fails if the probe is unknown, if the network deadlocks
// or livelocks, or if the probe is still undelivered after limit cycles
// (the partial status is returned alongside the error in every case).
func (s *Simulator) RunUntilProbe(id int64, limit int) (ProbeStatus, error) {
	st, ok := s.Probe(id)
	if !ok {
		return ProbeStatus{}, fmt.Errorf("wormsim: unknown probe id %d", id)
	}
	for i := 0; i < limit && s.probes[id].deliveredAt < 0; i++ {
		if err := s.RunCycles(1); err != nil {
			st, _ = s.Probe(id)
			return st, err
		}
	}
	st, _ = s.Probe(id)
	if st.Delivered < 0 {
		return st, fmt.Errorf("wormsim: probe %d undelivered after %d cycles", id, limit)
	}
	return st, nil
}

// LiveCounters is the running state a co-simulation client can query
// without finishing the run. All fields are whole-run totals (warmup
// included), so they are meaningful to an oracle running with NoWarmup and
// an open-ended measurement window.
type LiveCounters struct {
	// Cycle is the number of cycles simulated so far.
	Cycle int
	// InFlight is the number of flits currently inside the network.
	InFlight int
	// FlitsInjected counts every flit placed on an injection channel.
	FlitsInjected int64
	// FlitsDelivered counts every flit consumed by a destination processor.
	FlitsDelivered int64
	// PacketsUnroutable counts packets discarded at the source for lack of
	// a route (possible only after faults).
	PacketsUnroutable int
	// DeadlocksRecovered counts wait-for cycles broken by online recovery.
	DeadlocksRecovered int
}

// Counters returns the live whole-run counters.
func (s *Simulator) Counters() LiveCounters {
	return LiveCounters{
		Cycle:              s.cycle,
		InFlight:           s.inFlight,
		FlitsInjected:      s.res.FlitsInjected,
		FlitsDelivered:     s.res.FlitsDeliveredTotal,
		PacketsUnroutable:  s.res.PacketsUnroutable,
		DeadlocksRecovered: s.res.DeadlocksRecovered,
	}
}
