package wormsim

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
)

// oracleScript drives one simulator through a fixed interleaving of
// advances and probes and returns every probe's final status plus the
// closing counters — the oracle-visible behaviour the invariance tests
// compare across engines and worker counts.
func oracleScript(t *testing.T, cfg Config) ([]ProbeStatus, LiveCounters) {
	t.Helper()
	f, tb := randomFn(t, 7, 32, 4, core.DownUp{})
	sim, err := New(f, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunCycles(300); err != nil {
		t.Fatal(err)
	}
	var out []ProbeStatus
	for i, pair := range [][2]int{{0, 17}, {5, 23}, {30, 2}, {9, 9 + 1}} {
		id, err := sim.InjectProbe(pair[0], pair[1], 64+i)
		if err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		st, err := sim.RunUntilProbe(id, 50000)
		if err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		out = append(out, st)
		if err := sim.RunCycles(100); err != nil {
			t.Fatal(err)
		}
	}
	return out, sim.Counters()
}

// TestProbeInvariantAcrossEnginesAndWorkers is the oracle-side determinism
// contract: the same probe script yields identical statuses and counters
// under every engine and any worker count.
func TestProbeInvariantAcrossEnginesAndWorkers(t *testing.T) {
	base := Config{
		InjectionRate: 0.05,
		WarmupCycles:  NoWarmup,
		MeasureCycles: 1 << 30,
		Seed:          42,
	}
	type variant struct {
		name string
		cfg  Config
	}
	var variants []variant
	for _, e := range Engines() {
		c := base
		c.Engine = e
		variants = append(variants, variant{e.String(), c})
	}
	for _, w := range []int{1, 2, 4} {
		c := base
		c.Engine = EngineParallel
		c.Workers = w
		variants = append(variants, variant{fmt.Sprintf("parallel-%dw", w), c})
	}
	ref, refCnt := oracleScript(t, variants[0].cfg)
	for _, v := range variants[1:] {
		got, cnt := oracleScript(t, v.cfg)
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("%s probe %d: got %+v, want %+v", v.name, i, got[i], ref[i])
			}
		}
		if cnt != refCnt {
			t.Errorf("%s counters: got %+v, want %+v", v.name, cnt, refCnt)
		}
	}
	if ref[0].Delivered < 0 || ref[0].Latency() <= 0 || ref[0].Hops < 1 {
		t.Fatalf("degenerate reference probe: %+v", ref[0])
	}
}

// TestProbeDoesNotPerturbBackgroundRNG verifies the non-perturbation
// contract behind the probe RNG split: injecting probes must leave the
// background packets' creation cycles, endpoints, and sampled path lengths
// exactly as they were without any probe. (Delivery timing may shift — the
// probe contends for real channels — so the comparison keys on the
// injection-side columns only.)
func TestProbeDoesNotPerturbBackgroundRNG(t *testing.T) {
	f, tb := randomFn(t, 11, 24, 4, core.DownUp{})
	runTrace := func(probes bool) []string {
		var buf bytes.Buffer
		sim, err := New(f, tb, Config{
			InjectionRate: 0.03,
			WarmupCycles:  NoWarmup,
			MeasureCycles: 1 << 30,
			Seed:          5,
			Trace:         &buf,
		})
		if err != nil {
			t.Fatal(err)
		}
		probeIDs := map[string]bool{}
		for step := 0; step < 8; step++ {
			if err := sim.RunCycles(400); err != nil {
				t.Fatal(err)
			}
			if probes && step%2 == 0 {
				id, err := sim.InjectProbe(step, 23-step, 32)
				if err != nil {
					t.Fatal(err)
				}
				st, _ := sim.Probe(id)
				probeIDs[fmt.Sprintf("%d,%d,%d", st.Src, st.Dst, st.Created)] = true
			}
		}
		if err := sim.RunCycles(20000); err != nil { // drain so everything traces
			t.Fatal(err)
		}
		var rows []string
		for _, line := range strings.Split(buf.String(), "\n")[1:] {
			if line == "" {
				continue
			}
			// pkt,src,dst,created,injected,delivered,hops -> keep src,dst,created,hops
			cols := strings.Split(line, ",")
			key := cols[1] + "," + cols[2] + "," + cols[3]
			if probeIDs[key] {
				continue // the probe's own row
			}
			rows = append(rows, key+","+cols[6])
		}
		sort.Strings(rows)
		return rows
	}
	clean := runTrace(false)
	probed := runTrace(true)
	if len(clean) == 0 {
		t.Fatal("no background packets delivered")
	}
	if len(clean) != len(probed) {
		t.Fatalf("background packet count changed: %d clean, %d probed", len(clean), len(probed))
	}
	for i := range clean {
		if clean[i] != probed[i] {
			t.Fatalf("background packet %d perturbed: clean %q, probed %q", i, clean[i], probed[i])
		}
	}
}

// TestProbeValidation covers the refusal paths of InjectProbe.
func TestProbeValidation(t *testing.T) {
	f, tb := randomFn(t, 3, 16, 4, core.DownUp{})
	sim, err := New(f, tb, Config{InjectionRate: 0.02, WarmupCycles: NoWarmup, MeasureCycles: 1 << 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for name, probe := range map[string][3]int{
		"src-oob":    {-1, 2, 8},
		"dst-oob":    {0, 16, 8},
		"self":       {3, 3, 8},
		"zero-flits": {0, 1, 0},
	} {
		if _, err := sim.InjectProbe(probe[0], probe[1], probe[2]); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, ok := sim.Probe(99); ok {
		t.Error("unknown probe id reported ok")
	}
	if _, err := sim.RunUntilProbe(99, 10); err == nil {
		t.Error("RunUntilProbe accepted unknown id")
	}
	id, err := sim.InjectProbe(0, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunUntilProbe(id, 1); err == nil {
		t.Error("RunUntilProbe limit 1 should fail for an undelivered probe")
	}
	sim.Finish()
	if _, err := sim.InjectProbe(0, 9, 4); err == nil {
		t.Error("InjectProbe after Finish accepted")
	}
}
