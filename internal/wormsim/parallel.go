package wormsim

// The parallel engine (Config.Engine == EngineParallel). It runs the event
// engine's cycle on a fixed pool of workers and produces byte-identical
// results for every seed, independent of GOMAXPROCS and of the configured
// worker count. Determinism rests on three mechanisms (DESIGN.md S26):
//
//   - 64-aligned contiguous partitioning: worker k owns switches
//     [lo[k], hi[k]), with boundaries at multiples of 64 so every bitmask
//     word (active-lane, active-switch, active-source) has exactly one
//     writer. Stages whose state is per-switch (crossbar, injection feed,
//     generation) run on the owner; the link stage partitions by the
//     *downstream* switch of each filled wire, because landing a flit
//     writes the downstream lane.
//
//   - a static wavefront schedule for the crossbar stage: popping a flit
//     at switch u frees buffer space and a wire that a later-indexed
//     adjacent switch v observes in the same cycle (canAccept, the
//     least-loaded selection), so sequential order matters exactly between
//     adjacent switches. level[v] = 1 + max(level[u]) over neighbors
//     u < v gives every switch the earliest phase in which all its
//     lower-indexed neighbors are done; switches within a level are
//     mutually non-adjacent, so processing them concurrently commutes, and
//     a barrier between levels reproduces the sequential credit
//     visibility. The communication graph is immutable for a Simulator's
//     lifetime (faults only flag resources dead; Rewire swaps the path
//     source), so the schedule is computed once.
//
//   - deterministic merge order: per-worker filled-wire lists, counter
//     deltas, and staged packet spawns are drained in ascending worker
//     order. Ejection fills are sorted within each worker; since ranges
//     are contiguous and ascending, worker-order concatenation equals the
//     ascending node order the sequential engines deliver in. Packet
//     randomness comes from per-node RNG streams (split identically under
//     every engine), so no draw depends on scheduling.
//
// Phases whose sequential order is observable and cheap stay on the
// coordinator: delivery always (float accumulation, the latency ledger,
// traces, closed-loop callbacks); the crossbar stage when a global
// random-selection draw or a TraceMove hook imposes a total order; the
// feed stage under TraceMove; generation under a closed-loop workload
// (the ClosedLoop contract is single-goroutine, ascending node order).
// Everything between cycles — recovery scans, fault injection, the
// watchdog — already runs on the caller goroutine and needs no change.
//
// The pool is W-1 goroutines parked on a channel; within a cycle the
// phases synchronize on a generation-counting spin barrier (spinners yield
// to the scheduler, so single-core machines make progress, just without
// speedup). Workers never root the Simulator while parked: they receive it
// anew each cycle, so an abandoned simulator stays collectable, and a
// finalizer backstop closes the pool if Finish is never called (error
// paths in drivers). A panic on any worker marks the run broken, every
// spin loop drains, and the coordinator re-panics with the original value
// on the caller goroutine — exactly what the harness's panic guard
// expects.

import (
	"math/bits"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// parState is the parallel engine's schedule and pool state.
type parState struct {
	workers int
	// lo/hi are worker k's owned switch range [lo[k], hi[k]); wordLo/wordHi
	// the same range in 64-bit bitmask words. Boundaries are 64-aligned.
	lo, hi         []int
	wordLo, wordHi []int
	// level[v] is v's wavefront phase; levelMasks[l] is the bitmask of
	// switches in phase l, intersected with the active-switch mask each
	// cycle.
	level      []int32
	nLevels    int
	levelMasks [][]uint64
	// wireDst[w] is the switch whose input lane wire w feeds (the channel
	// sink, or the node itself for injection wires) — the link stage's
	// partition key.
	wireDst []int32
	ejBase  int // first ejection wire index (nCh + n)

	// readyEject/readyOther are the per-worker filled-wire lists of the
	// previous cycle, swapped from the wctx fill lists at cycle start.
	readyEject [][]int32
	readyOther [][]int32

	// seqSwitch/seqFeed/seqGen select the sequential fallbacks for the
	// order-observable configurations; set by the coordinator before the
	// workers wake, constant within a cycle.
	seqSwitch, seqFeed, seqGen bool

	work     chan *Simulator // wakes parked workers, one token per worker per cycle
	barCount atomic.Int32    // spin-barrier arrival count
	barGen   atomic.Uint32   // spin-barrier generation
	done     atomic.Int32    // workers finished with the current cycle
	broken   atomic.Bool     // a worker panicked; every spin loop drains
	panicMu  sync.Mutex
	panicVal any
	stop     sync.Once
}

// newParState builds the partition, the wavefront schedule, and the worker
// pool for s. requested==0 means GOMAXPROCS; the effective count is capped
// at one worker per 64 switches so every bitmask word stays single-writer.
func newParState(s *Simulator, requested int) *parState {
	w := requested
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	words := (s.n + 63) / 64
	if w > words {
		w = words
	}
	if w < 1 {
		w = 1
	}
	par := &parState{workers: w, ejBase: s.nCh + s.n}
	par.lo = make([]int, w)
	par.hi = make([]int, w)
	par.wordLo = make([]int, w)
	par.wordHi = make([]int, w)
	for k := 0; k < w; k++ {
		par.wordLo[k] = k * words / w
		par.wordHi[k] = (k + 1) * words / w
		par.lo[k] = par.wordLo[k] * 64
		par.hi[k] = min(par.wordHi[k]*64, s.n)
	}

	// Wavefront levels: a switch waits for every lower-indexed neighbor
	// (either channel direction makes the pair order-sensitive).
	par.level = make([]int32, s.n)
	for v := 0; v < s.n; v++ {
		lv := int32(0)
		for _, c := range s.cg.In[v] {
			if u := s.cg.Channels[c].From; u < v && par.level[u]+1 > lv {
				lv = par.level[u] + 1
			}
		}
		for _, c := range s.cg.Out[v] {
			if u := s.cg.Channels[c].To; u < v && par.level[u]+1 > lv {
				lv = par.level[u] + 1
			}
		}
		par.level[v] = lv
		if int(lv)+1 > par.nLevels {
			par.nLevels = int(lv) + 1
		}
	}
	par.levelMasks = make([][]uint64, par.nLevels)
	for l := range par.levelMasks {
		par.levelMasks[l] = make([]uint64, words)
	}
	for v, lv := range par.level {
		par.levelMasks[lv][v>>6] |= 1 << (uint(v) & 63)
	}

	par.wireDst = make([]int32, s.nCh+s.n)
	for c := 0; c < s.nCh; c++ {
		par.wireDst[c] = int32(s.cg.Channels[c].To)
	}
	for v := 0; v < s.n; v++ {
		par.wireDst[s.nCh+v] = int32(v)
	}

	par.readyEject = make([][]int32, w)
	par.readyOther = make([][]int32, w)
	if w > 1 {
		par.work = make(chan *Simulator, w-1)
		for k := 1; k < w; k++ {
			go par.workerLoop(k)
		}
		// Drivers abandon simulators on error paths without calling
		// Finish; the finalizer keeps those from leaking pool goroutines.
		runtime.SetFinalizer(s, (*Simulator).releaseWorkers)
	}
	return par
}

// Workers returns the effective parallel worker count (1 for the
// sequential engines) — diagnostics for CLIs and benchmarks.
func (s *Simulator) Workers() int {
	if s.par == nil {
		return 1
	}
	return s.par.workers
}

// releaseWorkers shuts the worker pool down; idempotent, called by Finish
// and by the GC finalizer backstop.
func (s *Simulator) releaseWorkers() {
	if s.par == nil || s.par.work == nil {
		return
	}
	s.par.stop.Do(func() { close(s.par.work) })
}

// workerLoop parks worker k between cycles; each received token is one
// cycle of work on the sending simulator.
func (par *parState) workerLoop(k int) {
	for s := range par.work {
		s.parCycleWorker(k)
	}
}

// parCycleWorker runs one cycle's phases as worker k, converting a panic
// into the broken flag (the coordinator re-raises it) and always counting
// itself done so the coordinator's quiesce cannot hang.
func (s *Simulator) parCycleWorker(k int) {
	defer func() {
		if r := recover(); r != nil {
			s.par.noteBroken(r)
		}
		s.par.done.Add(1)
	}()
	s.parCycle(k)
}

// noteBroken records the first panic value and marks the run broken so
// every spin loop drains.
func (par *parState) noteBroken(r any) {
	par.panicMu.Lock()
	if par.panicVal == nil {
		par.panicVal = r
	}
	par.panicMu.Unlock()
	par.broken.Store(true)
}

// barrier blocks until all workers arrive (generation-counting spin with
// scheduler yields). It returns false when the run broke — callers must
// drain immediately; the barrier state is not reusable after that.
func (par *parState) barrier() bool {
	gen := par.barGen.Load()
	if par.barCount.Add(1) == int32(par.workers) {
		par.barCount.Store(0)
		par.barGen.Add(1)
	} else {
		for i := 0; par.barGen.Load() == gen; i++ {
			if par.broken.Load() {
				return false
			}
			if i > 32 {
				runtime.Gosched()
			}
		}
	}
	return !par.broken.Load()
}

// awaitWorkers spins until every pool worker has finished the current
// cycle (including their panic epilogues), so the coordinator never runs
// the sequential tail — or unwinds a panic — while a worker could still
// touch simulator state.
func (par *parState) awaitWorkers() {
	for par.done.Load() < int32(par.workers-1) {
		runtime.Gosched()
	}
}

// stepParallel runs one cycle under the parallel engine. The coordinator
// (the RunCycles goroutine) handles every order-observable sequential
// piece — delivery, staged-spawn commits — and acts as worker 0 in
// between.
func (s *Simulator) stepParallel() {
	par := s.par
	if par.broken.Load() {
		panic(par.panicVal) // a previous cycle already panicked; the sim is dead
	}
	defer func() {
		if r := recover(); r != nil {
			par.noteBroken(r)
			par.awaitWorkers()
			panic(r)
		}
	}()
	par.seqSwitch = s.TraceMove != nil || (s.cfg.Mode == Adaptive && s.cfg.Select == SelectRandom)
	par.seqFeed = s.TraceMove != nil
	par.seqGen = s.cfg.Workload != nil
	for k := 0; k < par.workers; k++ {
		wx := &s.wk[k]
		par.readyEject[k], wx.fillEject = wx.fillEject, par.readyEject[k][:0]
		par.readyOther[k], wx.fillOther = wx.fillOther, par.readyOther[k][:0]
	}
	// Delivery: coordinator-only, worker order == ascending node order
	// (each list is sorted and the ranges are contiguous).
	for k := 0; k < par.workers; k++ {
		for _, w := range par.readyEject[k] {
			s.deliverEject(int(w) - par.ejBase)
		}
	}
	par.done.Store(0)
	for k := 1; k < par.workers; k++ {
		par.work <- s
	}
	s.parCycle(0)
	par.awaitWorkers()
	if par.broken.Load() {
		panic(par.panicVal)
	}
	// Commit staged spawns in worker order == ascending source-node order,
	// so packet ids match the sequential engines.
	for k := 0; k < par.workers; k++ {
		wx := &s.wk[k]
		for i := range wx.spawns {
			rec := &wx.spawns[i]
			if !rec.ok {
				s.res.PacketsUnroutable++
			} else {
				s.commitPacket(int(rec.v), int(rec.dst), noTag, rec.route, int32(s.cfg.PacketLength))
			}
			rec.route = nil // release staged path memory
		}
		wx.spawns = wx.spawns[:0]
	}
}

// parCycle runs the barrier-phased portion of one cycle as worker k. Every
// worker — including the coordinator as worker 0 — executes the same
// barrier sequence; the sequential-fallback flags are cycle-constant, so
// the counts always agree.
func (s *Simulator) parCycle(k int) {
	par := s.par
	wx := &s.wk[k]

	// Link phase, partitioned by downstream switch: every worker scans all
	// fill lists and claims the wires landing in its range. Distinct wires
	// feed distinct lanes, so claims never overlap and order within the
	// phase is immaterial.
	lo, hi := int32(par.lo[k]), int32(par.hi[k])
	for j := 0; j < par.workers; j++ {
		for _, w := range par.readyOther[j] {
			if d := par.wireDst[w]; d >= lo && d < hi {
				s.linkWire(wx, int(w))
			}
		}
	}
	if !par.barrier() {
		return
	}

	// Crossbar phase: wavefront levels over the active-switch mask.
	// Same-level switches are mutually non-adjacent, so concurrent
	// processing commutes; the barrier between levels reproduces the
	// sequential engines' same-cycle credit visibility between adjacent
	// switches.
	if par.seqSwitch {
		if k == 0 {
			s.switchStageEvent(wx)
		}
		if !par.barrier() {
			return
		}
	} else {
		sw := s.ev.switchWords
		for l := 0; l < par.nLevels; l++ {
			mask := par.levelMasks[l]
			for wi := par.wordLo[k]; wi < par.wordHi[k]; wi++ {
				word := mask[wi] & sw[wi]
				base := wi << 6
				for word != 0 {
					v := base + bits.TrailingZeros64(word)
					word &= word - 1
					if s.switchEvent(wx, v) {
						sw[wi] &^= 1 << (uint(v) & 63)
					}
				}
			}
			if !par.barrier() {
				return
			}
		}
	}

	// The crossbar phase is the only filler of ejection wires; sorting each
	// worker's list here restores the global ascending delivery order the
	// coordinator consumes next cycle.
	slices.Sort(wx.fillEject)

	// Feed phase: per-node state, partitioned by owner.
	if par.seqFeed {
		if k == 0 {
			s.feedInjectionEvent(wx)
		}
	} else {
		for wi := par.wordLo[k]; wi < par.wordHi[k]; wi++ {
			word := s.ev.srcWords[wi]
			base := wi << 6
			for word != 0 {
				v := base + bits.TrailingZeros64(word)
				word &= word - 1
				if s.feedNode(wx, v) {
					s.ev.srcWords[wi] &^= 1 << (uint(v) & 63)
				}
			}
		}
	}
	if !par.barrier() {
		return
	}

	// Generate phase: tick the owned sources and sample routes into the
	// staging list; the coordinator commits after the cycle. Under a
	// closed-loop workload the ClosedLoop contract (single goroutine,
	// ascending node order) forces the sequential path.
	if par.seqGen {
		if k == 0 {
			s.generate()
		}
		return
	}
	for v := par.lo[k]; v < par.hi[k]; v++ {
		if s.deadNode[v] {
			continue
		}
		dst, ok := s.sources[v].Tick()
		if !ok {
			continue
		}
		route, rok := s.sampleRoute(wx, v, dst)
		wx.spawns = append(wx.spawns, spawnRec{v: int32(v), dst: int32(dst), ok: rok, route: route})
	}
}
