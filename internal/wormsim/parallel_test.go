package wormsim

// Parallel-engine determinism tests beyond the differential matrix: the
// worker-count invariance property (results are byte-identical for 1, 2,
// 4, and 8 workers, and identical to the event engine), the partition and
// wavefront-schedule invariants the engine's correctness argument rests
// on, and a race-detector workout that runs multi-worker cycles under
// every stage combination (the CI parallel-smoke job runs this file with
// -race).

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestParallelWorkerCountInvariance runs one 512-switch configuration under
// the event engine and under the parallel engine with 1, 2, 4, and 8
// workers (512 switches = 8 bitmask words, so all four counts are
// genuinely distinct partitions) and requires byte-identical results.
func TestParallelWorkerCountInvariance(t *testing.T) {
	cycles := 3000
	if testing.Short() {
		cycles = 600
	}
	cfg := Config{
		PacketLength:  16,
		InjectionRate: 0.25,
		WarmupCycles:  NoWarmup,
		MeasureCycles: cycles,
		Seed:          11,
	}
	run := func(engine Engine, workers int) ([]byte, *Result) {
		fn, tb := randomFn(t, 31, 512, 4, core.DownUp{})
		c := cfg
		c.Engine = engine
		c.Workers = workers
		sim, err := New(fn, tb, c)
		if err != nil {
			t.Fatal(err)
		}
		if engine == EngineParallel && workers > 1 && sim.Workers() != workers {
			t.Fatalf("Workers()=%d, want %d (512 switches should not clamp it)", sim.Workers(), workers)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		j, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return j, res
	}
	refJSON, refRes := run(EngineEvent, 0)
	for _, workers := range []int{1, 2, 4, 8} {
		j, res := run(EngineParallel, workers)
		if !reflect.DeepEqual(refRes, res) {
			t.Fatalf("workers=%d: results diverge from event engine:\nevent:    %+v\nparallel: %+v", workers, refRes, res)
		}
		if !bytes.Equal(refJSON, j) {
			t.Fatalf("workers=%d: JSON encodings diverge:\nevent:    %s\nparallel: %s", workers, refJSON, j)
		}
	}
}

// TestParallelSchedule checks the invariants the engine's determinism
// argument rests on: worker ranges are 64-aligned, contiguous, and cover
// all switches; adjacent switches never share a wavefront level; and the
// level of every switch is one more than its highest lower-indexed
// neighbor (the earliest phase that preserves sequential credit
// visibility).
func TestParallelSchedule(t *testing.T) {
	fn, tb := randomFn(t, 5, 256, 4, core.DownUp{})
	sim, err := New(fn, tb, Config{Engine: EngineParallel, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	par := sim.par
	if par.workers != 3 {
		t.Fatalf("workers=%d, want 3", par.workers)
	}
	next := 0
	for k := 0; k < par.workers; k++ {
		if par.lo[k] != next {
			t.Fatalf("worker %d range starts at %d, want %d (contiguous)", k, par.lo[k], next)
		}
		if par.lo[k]%64 != 0 {
			t.Fatalf("worker %d range start %d not 64-aligned", k, par.lo[k])
		}
		if par.hi[k] < par.lo[k] {
			t.Fatalf("worker %d range [%d,%d) inverted", k, par.lo[k], par.hi[k])
		}
		next = par.hi[k]
	}
	if next != sim.n {
		t.Fatalf("ranges cover %d switches, want %d", next, sim.n)
	}
	cg := sim.cg
	for v := 0; v < sim.n; v++ {
		want := int32(0)
		for _, c := range cg.In[v] {
			u := cg.Channels[c].From
			if par.level[u] == par.level[v] {
				t.Fatalf("adjacent switches %d and %d share level %d", u, v, par.level[v])
			}
			if u < v && par.level[u]+1 > want {
				want = par.level[u] + 1
			}
		}
		if par.level[v] != want {
			t.Fatalf("level[%d]=%d, want %d", v, par.level[v], want)
		}
	}
	if par.nLevels < 2 || par.nLevels > sim.n {
		t.Fatalf("suspicious level count %d for %d switches", par.nLevels, sim.n)
	}
	sim.Finish()
}

// TestParallelWorkerClamp pins the degrade-gracefully behavior: small
// networks clamp to one worker (no pool goroutines), and Workers=0 means
// GOMAXPROCS, capped the same way.
func TestParallelWorkerClamp(t *testing.T) {
	fn, tb := randomFn(t, 1, 32, 4, core.DownUp{})
	sim, err := New(fn, tb, Config{Engine: EngineParallel, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Workers() != 1 {
		t.Fatalf("32 switches with Workers=8 gave %d workers, want 1 (one per 64 switches)", sim.Workers())
	}
	if sim.par.work != nil {
		t.Fatal("single-worker parallel engine spawned a pool")
	}
	if err := sim.RunCycles(200); err != nil {
		t.Fatal(err)
	}
	sim.Finish()

	fn2, tb2 := randomFn(t, 2, 8, 4, core.DownUp{})
	seq, err := New(fn2, tb2, Config{Engine: EngineEvent})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Workers() != 1 {
		t.Fatalf("sequential engine reports %d workers", seq.Workers())
	}
}

// TestParallelRace drives multi-worker cycles through every parallel phase
// combination — open-loop source-routed, adaptive with a deterministic
// selection (the parallel crossbar path), fault injection with recovery
// scans between cycles — so `go test -race` patrols the engine's
// synchronization. Kept short-mode friendly: the CI race job runs -short.
func TestParallelRace(t *testing.T) {
	cycles := 1200
	if testing.Short() {
		cycles = 400
	}
	for _, tc := range []struct {
		name string
		mut  func(c *Config)
	}{
		{name: "source-routed", mut: func(c *Config) {}},
		{name: "adaptive-first", mut: func(c *Config) { c.Mode = Adaptive; c.Select = SelectFirst }},
		{name: "least-loaded-2vc", mut: func(c *Config) { c.Mode = Adaptive; c.Select = SelectLeastLoaded; c.VirtualChannels = 2 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fn, tb := randomFn(t, 17, 256, 4, core.DownUp{})
			cfg := Config{
				PacketLength:  16,
				InjectionRate: 0.3,
				WarmupCycles:  NoWarmup,
				MeasureCycles: cycles,
				Seed:          3,
				Engine:        EngineParallel,
				Workers:       4,
			}
			tc.mut(&cfg)
			sim, err := New(fn, tb, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := sim.RunCycles(cycles / 2); err != nil {
				t.Fatal(err)
			}
			sim.KillChannel(0)
			sim.DropInFlight()
			if err := sim.RunCycles(cycles / 2); err != nil {
				t.Fatal(err)
			}
			res := sim.Finish()
			if err := res.CheckConservation(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestParallelPanicPropagates ensures a panic raised on a pool worker
// mid-cycle reaches the RunCycles caller on its own goroutine (the
// harness's panic guard depends on this), and that the simulator refuses
// further use afterwards.
func TestParallelPanicPropagates(t *testing.T) {
	fn, tb := randomFn(t, 9, 256, 4, core.DownUp{})
	sim, err := New(fn, tb, Config{
		PacketLength:  8,
		InjectionRate: 0.2,
		WarmupCycles:  NoWarmup,
		MeasureCycles: 1000,
		Engine:        EngineParallel,
		Workers:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunCycles(50); err != nil {
		t.Fatal(err)
	}
	// Corrupt credit accounting so a worker's linkWire hits its invariant
	// panic: mark a buffered lane's wire full again with a stale flit.
	sim.par.broken.Store(false)
	for w := 0; w < sim.nCh; w++ {
		if !sim.wireFull[w] {
			sim.wireFull[w] = true
			sim.wire[w] = flit{pkt: 0, idx: 1, arrived: sim.now - 1}
			sim.wireVCL[w] = int32(w * sim.nVC)
			for sim.bufs[w*sim.nVC].size < len(sim.bufs[w*sim.nVC].buf) {
				sim.bufs[w*sim.nVC].push(flit{pkt: 0, idx: 0, arrived: sim.now - 1})
			}
			sim.wk[0].noteFill(w)
			break
		}
	}
	recovered := func() (r any) {
		defer func() { r = recover() }()
		_ = sim.RunCycles(2)
		return nil
	}()
	if recovered == nil {
		t.Fatal("corrupted credit state did not panic through RunCycles")
	}
	// The sim is terminal: the next cycle re-raises the stored panic.
	second := func() (r any) {
		defer func() { r = recover() }()
		_ = sim.RunCycles(1)
		return nil
	}()
	if second == nil {
		t.Fatal("broken simulator accepted further cycles")
	}
}
