package wormsim

// Online deadlock and livelock recovery. The post-mortem watchdog of
// deadlock.go proves a run froze after the fact and throws it away; this
// layer keeps the run alive. Every Config.DetectInterval cycles the
// simulator rebuilds the wait-for graph over virtual-channel lanes whose
// head flits have been stalled for at least a full interval — a genuine
// circular wait is stable, so every lane on it qualifies after one
// interval, while transient congestion never does. Each detected cycle is
// broken by aborting a deterministic victim packet on it (the youngest,
// i.e. highest packet id) back to its source and re-injecting it after an
// exponential backoff, the classic abort-and-retry (regressive) deadlock
// recovery. Retries are bounded; a packet that keeps deadlocking is
// discarded and counted rather than looping forever.
//
// Livelock is the dual failure: a packet that keeps *moving* (or keeps
// being retried) without ever arriving. A per-packet age bound over the
// cycles since first injection turns silent starvation into a structured
// *LivelockError, mirroring the deadlock diagnostic.
//
// Everything here is deterministic: scans run at fixed cycles, the
// wait-for graph and its cycle extraction are order-stable, victim
// selection is a pure function of the cycle, and backoff delays are
// computed from retry counts — two runs of the same seed produce
// byte-identical results, recovery included.

import "fmt"

// maxRetryBackoff caps the exponential re-injection delay so a deep retry
// chain cannot park a packet for a whole measurement window.
const maxRetryBackoff = 8192

// LivelockInfo is the structured diagnostic of a detected livelock: the
// oldest undelivered packet past the age bound, and where it stands.
type LivelockInfo struct {
	// DetectedAt is the cycle the age bound tripped.
	DetectedAt int
	// Packet is the id of the starving packet.
	Packet int
	// Src and Dst are its endpoints.
	Src, Dst int
	// Created and FirstInjected are the packet's birth and first-injection
	// cycles (first injection survives recovery aborts).
	Created, FirstInjected int
	// Age is DetectedAt - FirstInjected, the bound that was exceeded.
	Age int
	// Retries is how many times recovery aborted and re-injected it.
	Retries int
	// Threshold is the configured LivelockThreshold.
	Threshold int
	// Algorithm names the routing function being simulated.
	Algorithm string
}

// LivelockError is the error returned when a packet exceeds the livelock
// age bound; it wraps the structured diagnostic.
type LivelockError struct {
	Info *LivelockInfo
}

// Error renders the livelock diagnostic as a one-line summary; the
// structured detail stays in Info.
func (e *LivelockError) Error() string {
	l := e.Info
	return fmt.Sprintf("wormsim: livelock detected at cycle %d under %s: packet %d (%d -> %d) undelivered %d cycles after first injection at %d (threshold %d, %d recovery retries)",
		l.DetectedAt, l.Algorithm, l.Packet, l.Src, l.Dst, l.Age, l.FirstInjected, l.Threshold, l.Retries)
}

// recoveryScan is the periodic detector: livelock ages first (an aged
// packet is a hard failure and must not be masked by an abort), then
// deadlock cycles, then the frozen-network fallback.
func (s *Simulator) recoveryScan() error {
	if s.cfg.LivelockThreshold != NoLivelockCheck {
		if err := s.livelockCheck(); err != nil {
			return err
		}
	}
	if !s.cfg.RecoverDeadlocks {
		return nil
	}
	minStall := int32(s.cfg.DetectInterval)
	for {
		waits, blockedPkt := s.waitGraph(minStall)
		cyc := s.findWaitCycle(waits, blockedPkt)
		if len(cyc) == 0 {
			break
		}
		victim := chooseVictim(cyc)
		s.res.DeadlocksRecovered++
		if s.OnRecovery != nil {
			s.OnRecovery(cyc, victim)
		}
		s.abortPacket(victim)
	}
	// Frozen-network fallback: the lane-granular wait-for graph can miss a
	// circular wait that closes through an allocated-but-empty lane (the
	// owner's flits have all trickled ahead). If nothing has moved for two
	// full intervals yet no cycle was extracted, abort the packet blocked
	// on the smallest lane — progress is guaranteed either way, so the
	// watchdog never fires while recovery is on (unless nothing is blocked
	// at all, which is the watchdog's own no-circular-wait case).
	if s.inFlight > 0 && s.now-s.lastMove >= int32(2*s.cfg.DetectInterval) {
		_, blockedPkt := s.waitGraph(0)
		if len(blockedPkt) > 0 {
			lane := int32(-1)
			for li := range blockedPkt {
				if lane < 0 || li < lane {
					lane = li
				}
			}
			victim := blockedPkt[lane]
			s.res.DeadlocksRecovered++
			if s.OnRecovery != nil {
				s.OnRecovery(nil, victim)
			}
			s.abortPacket(victim)
		}
	}
	return nil
}

// chooseVictim picks the deterministic victim of a wait-for cycle: the
// youngest packet on it (highest id). Aborting the youngest sacrifices
// the least network progress, and age strictly orders packets, so the
// choice is stable across runs.
func chooseVictim(cyc []BlockedVC) int32 {
	victim := int32(cyc[0].Packet)
	for _, b := range cyc[1:] {
		if int32(b.Packet) > victim {
			victim = int32(b.Packet)
		}
	}
	return victim
}

// abortPacket pulls one packet entirely out of the network and either
// schedules a retry (bounded, exponentially backed off, route resampled
// under the current path source) or discards it.
func (s *Simulator) abortPacket(pid int32) {
	p := &s.packets[pid]
	fullyInjected := p.sentFlits == p.length
	removed := s.removePacketFlits(pid)
	s.res.PacketsAborted++
	s.res.FlitsAborted += int64(removed)
	s.lastMove = s.now // the freed resources are progress for the watchdog
	p.sentFlits = 0
	p.delivered = 0
	p.injected = -1
	p.hop = 0
	p.hops = 0
	// Resampling the route matters: replaying the exact path would often
	// rebuild the exact cycle. A dead source or an unroutable destination
	// (possible only after faults) ends the retry chain instead.
	if p.retries >= int32(s.cfg.MaxRetries) || s.deadNode[p.src] || !s.reroute(int(p.src), p) {
		p.dropped = true
		p.route = nil
		s.res.RecoveryDropped++
		return
	}
	p.retries++
	if p.retries == 1 {
		s.retrying = append(s.retrying, pid)
	}
	backoff := int32(s.cfg.RetryBackoff) << uint(p.retries-1)
	if backoff > maxRetryBackoff || backoff <= 0 {
		backoff = maxRetryBackoff
	}
	p.notBefore = s.now + backoff
	s.res.PacketsRetried++
	if fullyInjected {
		// The packet had left its source queue; re-enqueue it at the tail.
		// A partially injected victim is still at its queue's head and
		// simply restarts streaming from flit zero after the backoff.
		s.queues[p.src] = append(s.queues[p.src], pid)
		if s.ev != nil {
			s.ev.markSource(int(p.src))
		}
	}
}

// livelockCheck enforces the age bound over every packet with flits in the
// network plus every packet in a recovery retry chain, reporting the
// oldest offender. It also compacts the retry list as packets complete.
func (s *Simulator) livelockCheck() error {
	limit := int32(s.cfg.LivelockThreshold)
	worst, worstAge := int32(-1), int32(0)
	check := func(pid int32) {
		p := &s.packets[pid]
		if p.dropped || p.firstInjected < 0 {
			return
		}
		age := s.now - p.firstInjected
		if age <= limit {
			return
		}
		if worst < 0 || age > worstAge || (age == worstAge && pid < worst) {
			worst, worstAge = pid, age
		}
	}
	for l := range s.bufs {
		b := &s.bufs[l]
		for i := 0; i < b.size; i++ {
			check(b.buf[(b.head+i)%len(b.buf)].pkt)
		}
	}
	for w := 0; w < s.wires; w++ {
		if s.wireFull[w] {
			check(s.wire[w].pkt)
		}
	}
	live := s.retrying[:0]
	for _, pid := range s.retrying {
		p := &s.packets[pid]
		if p.dropped || p.delivered == p.length {
			continue
		}
		live = append(live, pid)
		check(pid)
	}
	s.retrying = live
	if worst < 0 {
		return nil
	}
	p := &s.packets[worst]
	info := &LivelockInfo{
		DetectedAt:    int(s.now),
		Packet:        int(worst),
		Src:           int(p.src),
		Dst:           int(p.dst),
		Created:       int(p.created),
		FirstInjected: int(p.firstInjected),
		Age:           int(worstAge),
		Retries:       int(p.retries),
		Threshold:     s.cfg.LivelockThreshold,
		Algorithm:     s.fn.AlgorithmName,
	}
	s.res.Livelock = info
	return &LivelockError{Info: info}
}
