package wormsim

import (
	"encoding/json"
	"errors"
	"testing"
)

// recoveringRingConfig is the shared scenario of this file: the unrestricted
// ring of TestDeadlockDiagnostic — which reliably deadlocks (that test fails
// otherwise) — with online recovery switched on.
func recoveringRingConfig() Config {
	return Config{
		PacketLength:      64,
		BufferDepth:       2,
		InjectionRate:     0.8,
		WarmupCycles:      NoWarmup,
		MeasureCycles:     50000,
		DeadlockThreshold: 5000,
		Seed:              1,
		RecoverDeadlocks:  true,
		DetectInterval:    256,
	}
}

// TestRecoveryCompletesDeadlockingRun is the headline property: a
// configuration that deadlocks the plain simulator (TestDeadlockDiagnostic
// pins that) runs to completion under recovery, still delivers traffic, and
// every flit is accounted for.
func TestRecoveryCompletesDeadlockingRun(t *testing.T) {
	f, tb := unrestrictedRing(t, 4)
	res := run(t, f, tb, recoveringRingConfig())
	if res.Deadlock != nil {
		t.Fatalf("recovery run still carries a deadlock diagnostic: %+v", res.Deadlock)
	}
	if res.DeadlocksRecovered == 0 {
		t.Fatal("unrestricted ring at 0.8 load recovered zero deadlocks; scenario no longer exercises recovery")
	}
	if res.PacketsAborted == 0 || res.FlitsAborted == 0 {
		t.Fatalf("recovered %d deadlocks but aborted %d packets / %d flits",
			res.DeadlocksRecovered, res.PacketsAborted, res.FlitsAborted)
	}
	if res.PacketsDelivered == 0 {
		t.Fatal("recovery run delivered nothing")
	}
	if err := res.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	t.Logf("recovered=%d aborted=%d retried=%d dropped=%d delivered=%d",
		res.DeadlocksRecovered, res.PacketsAborted, res.PacketsRetried,
		res.RecoveryDropped, res.PacketsDelivered)
}

// TestRecoveryDeterminism: two runs of the identical configuration must be
// byte-identical, recovery events included — the property every checkpoint,
// CSV diff, and CI comparison in this repo leans on.
func TestRecoveryDeterminism(t *testing.T) {
	results := make([][]byte, 2)
	for i := range results {
		f, tb := unrestrictedRing(t, 4)
		res := run(t, f, tb, recoveringRingConfig())
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = b
	}
	if string(results[0]) != string(results[1]) {
		t.Fatalf("recovery runs diverged:\nrun 1: %s\nrun 2: %s", results[0], results[1])
	}
}

// TestRecoveryVictimOnCycle is the property test of the victim-selection
// contract: every victim the detector chooses must be one of the packets on
// the wait-for cycle it reports (frozen-network fallback aborts report a nil
// cycle and are exempt by construction).
func TestRecoveryVictimOnCycle(t *testing.T) {
	f, tb := unrestrictedRing(t, 4)
	sim, err := New(f, tb, recoveringRingConfig())
	if err != nil {
		t.Fatal(err)
	}
	events, fallbacks := 0, 0
	sim.OnRecovery = func(cyc []BlockedVC, victim int32) {
		if cyc == nil {
			fallbacks++
			return
		}
		events++
		for _, b := range cyc {
			if int32(b.Packet) == victim {
				return
			}
		}
		t.Fatalf("victim %d is not on the reported cycle %+v", victim, cyc)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("no cycle-break events observed; the property was never exercised")
	}
	if events+fallbacks != res.DeadlocksRecovered {
		t.Fatalf("observed %d+%d recovery events, Result counts %d",
			events, fallbacks, res.DeadlocksRecovered)
	}
}

// TestRecoveryRetryExhaustion drives the bounded-retry discard path: the
// OnRecovery hook (which fires before the abort) marks each victim as
// already at its retry bound, so every abort must take the discard branch —
// RecoveryDropped grows, nothing is retried, and conservation still holds
// because discarded flits are counted as aborted plus dropped-by-recovery.
func TestRecoveryRetryExhaustion(t *testing.T) {
	f, tb := unrestrictedRing(t, 4)
	sim, err := New(f, tb, recoveringRingConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim.OnRecovery = func(_ []BlockedVC, victim int32) {
		sim.packets[victim].retries = int32(sim.cfg.MaxRetries)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if res.DeadlocksRecovered == 0 {
		t.Fatal("scenario recovered zero deadlocks")
	}
	if res.RecoveryDropped != res.PacketsAborted {
		t.Fatalf("every abort should discard: dropped %d of %d aborts",
			res.RecoveryDropped, res.PacketsAborted)
	}
	if res.PacketsRetried != 0 {
		t.Fatalf("exhausted victims were retried %d times", res.PacketsRetried)
	}
}

// TestLivelockDiagnostic: a deadlocked ring with recovery off and a tight
// age bound must surface as a structured *LivelockError (packets are in the
// network, undelivered, past the bound) long before the deadlock watchdog
// would fire, and the partial Result must carry the same diagnostic.
func TestLivelockDiagnostic(t *testing.T) {
	f, tb := unrestrictedRing(t, 4)
	sim, err := New(f, tb, Config{
		PacketLength:      64,
		BufferDepth:       2,
		InjectionRate:     0.8,
		WarmupCycles:      NoWarmup,
		MeasureCycles:     50000,
		DeadlockThreshold: 20000,
		LivelockThreshold: 500,
		DetectInterval:    128,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err == nil {
		t.Fatal("tight age bound on a deadlocking ring did not trip")
	}
	var ll *LivelockError
	if !errors.As(err, &ll) {
		t.Fatalf("error is %T, want *LivelockError: %v", err, err)
	}
	info := ll.Info
	if info == nil {
		t.Fatal("LivelockError without Info")
	}
	if res == nil || res.Livelock != info {
		t.Fatal("partial Result does not carry the livelock diagnostic")
	}
	if info.Age <= info.Threshold {
		t.Fatalf("reported age %d does not exceed threshold %d", info.Age, info.Threshold)
	}
	if info.FirstInjected < 0 || info.DetectedAt-info.FirstInjected != info.Age {
		t.Fatalf("inconsistent diagnostic: %+v", info)
	}
	if info.Algorithm != "unrestricted" {
		t.Fatalf("diagnostic names algorithm %q", info.Algorithm)
	}
	if info.DetectedAt >= 20000 {
		t.Fatal("livelock fired later than the deadlock watchdog would have")
	}
	if msg := ll.Error(); msg == "" {
		t.Fatal("empty error message")
	}
}

// TestRecoveryConfigValidation pins the new knob validation.
func TestRecoveryConfigValidation(t *testing.T) {
	f, tb := unrestrictedRing(t, 4)
	base := recoveringRingConfig()
	bad := []func(*Config){
		func(c *Config) { c.DetectInterval = -1 },
		func(c *Config) { c.MaxRetries = -1 },
		func(c *Config) { c.RetryBackoff = -1 },
		func(c *Config) { c.LivelockThreshold = -2 },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, err := New(f, tb, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// NoLivelockCheck itself is legal.
	cfg := base
	cfg.LivelockThreshold = NoLivelockCheck
	if _, err := New(f, tb, cfg); err != nil {
		t.Errorf("NoLivelockCheck rejected: %v", err)
	}
}

// TestRecoveryOffByDefault: without RecoverDeadlocks the detector must not
// run — same deadlocking scenario, plain watchdog abort, zero recovery
// counters.
func TestRecoveryOffByDefault(t *testing.T) {
	cfg := recoveringRingConfig()
	cfg.RecoverDeadlocks = false
	cfg.DeadlockThreshold = 1000
	f, tb := unrestrictedRing(t, 4)
	sim, err := New(f, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err == nil {
		t.Fatal("run without recovery did not deadlock")
	}
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("error is %T, want *DeadlockError", err)
	}
	if res.DeadlocksRecovered != 0 || res.PacketsAborted != 0 || res.PacketsRetried != 0 {
		t.Fatalf("recovery counters nonzero with recovery off: %+v", res)
	}
}
