package wormsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestVirtualChannelValidation(t *testing.T) {
	f, tb := buildFn(t, topology.Line(3), routing.UpDown{})
	for _, vc := range []int{-1, 9} {
		if _, err := New(f, tb, Config{VirtualChannels: vc}); err == nil {
			t.Errorf("VirtualChannels=%d accepted", vc)
		}
	}
	for _, vc := range []int{1, 2, 8} {
		if _, err := New(f, tb, Config{VirtualChannels: vc}); err != nil {
			t.Errorf("VirtualChannels=%d rejected: %v", vc, err)
		}
	}
}

func TestVirtualChannelsLowLoadEquivalentLatency(t *testing.T) {
	// Under negligible load VCs change nothing structural: the minimum
	// latency stays the uncontended pipeline latency.
	f, tb := buildFn(t, topology.Line(2), routing.UpDown{})
	for _, vc := range []int{1, 4} {
		res := run(t, f, tb, Config{
			PacketLength:    16,
			VirtualChannels: vc,
			InjectionRate:   0.01,
			WarmupCycles:    100,
			MeasureCycles:   30000,
			Seed:            3,
		})
		if res.MinLatency != 16+2+3 {
			t.Fatalf("vc=%d: min latency %d, want 21", vc, res.MinLatency)
		}
	}
}

func TestVirtualChannelsImproveSaturationThroughput(t *testing.T) {
	// The classic virtual-channel result (Dally): at saturating load,
	// multiplexing blocked packets over the same wire raises accepted
	// traffic substantially.
	f, tb := randomFn(t, 7, 48, 4, core.DownUp{})
	var acc [2]float64
	for i, vc := range []int{1, 4} {
		res := run(t, f, tb, Config{
			PacketLength:    32,
			VirtualChannels: vc,
			InjectionRate:   0.5,
			WarmupCycles:    2000,
			MeasureCycles:   6000,
			Seed:            3,
		})
		acc[i] = res.AcceptedTraffic
	}
	if acc[1] < acc[0]*1.15 {
		t.Fatalf("4 VCs (%.4f) should clearly beat 1 VC (%.4f) at saturation", acc[1], acc[0])
	}
}

func TestVirtualChannelsDeterministic(t *testing.T) {
	f, tb := randomFn(t, 9, 24, 4, routing.LTurn{})
	cfg := Config{
		PacketLength:    16,
		VirtualChannels: 3,
		InjectionRate:   0.3,
		WarmupCycles:    500,
		MeasureCycles:   3000,
		Seed:            11,
	}
	a := run(t, f, tb, cfg)
	b := run(t, f, tb, cfg)
	if a.FlitsDelivered != b.FlitsDelivered || a.AvgLatency != b.AvgLatency {
		t.Fatal("VC simulation not deterministic")
	}
}

func TestVirtualChannelsNoInterleavingPerVC(t *testing.T) {
	// The wormhole invariant holds per virtual channel: each vclane's flit
	// sequence is whole packets in order.
	f, tb := randomFn(t, 21, 24, 4, core.DownUp{})
	cfg := Config{
		PacketLength:    16,
		VirtualChannels: 3,
		InjectionRate:   0.5,
		WarmupCycles:    NoWarmup,
		MeasureCycles:   5000,
		Seed:            17,
	}
	sim, err := New(f, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type laneState struct{ pkt, idx int32 }
	states := map[int32]laneState{}
	violations := 0
	sim.TraceMove = func(lane, pkt, idx int32) {
		st, ok := states[lane]
		if idx == 0 {
			if ok && st.idx != int32(cfg.PacketLength)-1 {
				violations++
			}
		} else if !ok || st.pkt != pkt || st.idx != idx-1 {
			violations++
		}
		states[lane] = laneState{pkt, idx}
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if violations > 0 {
		t.Fatalf("%d per-VC wormhole violations", violations)
	}
}

func TestVirtualChannelsNeverDeadlockVerified(t *testing.T) {
	// Turn-restriction deadlock freedom is per physical channel; adding
	// VCs must preserve it at punishing load.
	for _, alg := range []routing.Algorithm{core.DownUp{}, routing.LTurn{}} {
		f, tb := randomFn(t, 47, 32, 4, alg)
		sim, err := New(f, tb, Config{
			PacketLength:      32,
			VirtualChannels:   2,
			InjectionRate:     1.0,
			WarmupCycles:      NoWarmup,
			MeasureCycles:     15000,
			DeadlockThreshold: 5000,
			Seed:              3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatalf("%s with VCs deadlocked: %v", alg.Name(), err)
		}
	}
}

func TestVirtualChannelsAdaptive(t *testing.T) {
	f, tb := randomFn(t, 37, 24, 4, core.DownUp{})
	res := run(t, f, tb, Config{
		PacketLength:    16,
		VirtualChannels: 2,
		Mode:            Adaptive,
		InjectionRate:   0.2,
		WarmupCycles:    1000,
		MeasureCycles:   5000,
		Seed:            29,
	})
	if res.PacketsDelivered == 0 {
		t.Fatal("adaptive VC run delivered nothing")
	}
}
