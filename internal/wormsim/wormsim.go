// Package wormsim is a flit-level, cycle-accurate simulator for wormhole-
// switched irregular networks — the stand-in for the IRFlexSim0.5 simulator
// the paper ran its evaluation on (the original C tool is no longer
// available; DESIGN.md §3 documents the substitution).
//
// The model follows the paper's stated parameters:
//
//   - every switch connects to one processor through a dedicated port (one
//     injection and one ejection channel);
//   - a flit takes one clock to traverse a link and one clock to move from
//     an input channel to an output channel through the switch — a routing
//     header's clock through the switch is its routing/arbitration clock;
//   - packets are PacketLength flits long (128 in the paper);
//   - wormhole switching: a header allocates an output (virtual) channel
//     and holds it until the packet's tail flit has been transmitted
//     through it; flits of a packet never interleave with another packet
//     on a virtual channel.
//
// Virtual channels are supported (the paper: the DOWN/UP routing "can be
// directly applied to arbitrary topology with (or without) any virtual
// channel"): each physical channel carries VirtualChannels independent
// buffers; the physical wire transports one flit per clock, and flits move
// out of a switch only when the downstream virtual-channel buffer has space
// (credit-based flow control), so a blocked packet on one virtual channel
// never blocks the wire for the others.
//
// Routing is either source-routed over a random legal shortest path chosen
// at injection (the paper's methodology) or fully adaptive, choosing among
// shortest-continuing channels hop by hop.
//
// The simulator is deterministic under a seed and collects exactly the
// counters the paper's metrics need: per-output-channel flit counts,
// delivered flits, and packet latencies, all restricted to a measurement
// window that follows a warmup period.
package wormsim

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/cgraph"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/traffic"
)

// Engine selects the cycle-evaluation strategy. Both engines implement the
// same physics through the same per-lane/per-wire code and produce
// byte-identical Results under the same Config and Seed (enforced by the
// differential tests in differential_test.go); they differ only in how they
// find the work of a cycle.
type Engine int

const (
	// EngineEvent (the default) is the event-driven fast path: per-switch
	// active-lane worklists, an active-source set, and per-cycle filled-wire
	// lists let every stage iterate O(active) instead of O(channels x
	// virtual channels). Flat slice-backed bitmask scheduling — no maps on
	// the hot path.
	EngineEvent Engine = iota
	// EngineScan is the original engine: every stage scans every lane of
	// every switch each cycle. It is kept as the independently-implemented
	// baseline the event engine is differentially tested (and benchmarked)
	// against.
	EngineScan
	// EngineParallel is the multi-core engine: switches are partitioned
	// across a fixed worker pool in contiguous 64-aligned index ranges, each
	// cycle's stages run as a sequence of barrier-separated phases on the
	// same double-buffered wire state the event engine uses, and a static
	// wavefront schedule orders adjacent switches exactly as the sequential
	// engines do. Results are byte-identical to EngineEvent for every seed
	// and independent of the worker count; see parallel.go and DESIGN.md
	// S26.
	EngineParallel
)

// String names the engine: "event", "scan", or "parallel".
func (e Engine) String() string {
	switch e {
	case EngineScan:
		return "scan"
	case EngineParallel:
		return "parallel"
	default:
		return "event"
	}
}

// Engines returns every cycle-evaluation engine, scan baseline first — the
// order the differential suites compare them in. Byte-identity tests range
// over this list so a newly added engine is picked up by every suite
// automatically instead of being hand-listed per test.
func Engines() []Engine { return []Engine{EngineScan, EngineEvent, EngineParallel} }

// Mode selects how packets pick among legal shortest paths.
type Mode int

const (
	// SourceRouted picks one random legal shortest path per packet at
	// injection time (the paper's simulation methodology).
	SourceRouted Mode = iota
	// Adaptive lets the header choose, at every switch, uniformly among the
	// currently free shortest-continuing output channels.
	Adaptive
	// Deterministic fixes one shortest legal path per (source, destination)
	// pair — the first shortest continuation by channel id at every hop, so
	// all packets of a pair share a path. This is how deterministic source
	// routing (the style of the paper's reference [6]) behaves, and it
	// isolates what the paper's random tie-breaking buys.
	Deterministic
)

// String names the path-selection mode.
func (m Mode) String() string {
	switch m {
	case Adaptive:
		return "adaptive"
	case Deterministic:
		return "deterministic"
	default:
		return "source-routed"
	}
}

// Config parameterizes one simulation run.
type Config struct {
	// PacketLength is the packet size in flits (default 128, the paper's).
	PacketLength int
	// BufferDepth is the per-virtual-channel input buffer size in flits.
	// The default 4 covers the credit round-trip of the flow control (one
	// clock switch + one clock link each way), which is the textbook
	// minimum for sustaining one flit per clock; smaller depths are legal
	// and throttle per-channel throughput (available for sensitivity
	// studies).
	BufferDepth int
	// VirtualChannels is the number of virtual channels multiplexed over
	// each physical channel (default 1 = plain wormhole, the paper's
	// configuration).
	VirtualChannels int
	// InjectionRate is the offered load per node in flits/clock.
	InjectionRate float64
	// Pattern chooses packet destinations (default: uniform).
	Pattern traffic.Pattern
	// MeanBurst, when positive, switches the injection process from
	// Bernoulli to an ON/OFF bursty source with this mean burst length in
	// packets (same long-run rate; see traffic.BurstySource). Requires
	// 0 < InjectionRate < 1.
	MeanBurst int
	// Mode selects source-routed (default) or adaptive path selection.
	Mode Mode
	// Select is the adaptive-mode selection function (default: random).
	Select Selection
	// WarmupCycles run before measurement starts (default 3000; use the
	// NoWarmup sentinel to start measuring immediately — a zero value means
	// "default", like the other fields).
	WarmupCycles int
	// MeasureCycles is the measurement window length (default 12000).
	MeasureCycles int
	// Seed drives all randomness (topology randomness is *not* included —
	// the routing function is an input).
	Seed uint64
	// DeadlockThreshold aborts the run if no flit moves for this many
	// cycles while flits are in flight (default 20000). A verified routing
	// function never trips it; it exists to catch — and to demonstrate, in
	// tests — deadlocks under broken turn configurations. With
	// RecoverDeadlocks it is the backstop behind the online detector.
	DeadlockThreshold int
	// RecoverDeadlocks enables online deadlock recovery: every
	// DetectInterval cycles the simulator scans the wait-for graph over
	// stalled virtual-channel lanes; when a cycle is found, a deterministic
	// victim packet on the cycle is aborted back to its source and
	// re-injected after an exponential backoff (abort-and-retry recovery).
	// The run then completes instead of failing with a *DeadlockError.
	RecoverDeadlocks bool
	// DetectInterval is the online detector's scan period in cycles
	// (default 512). A lane joins the scanned wait-for graph only after its
	// head flit has been stalled for a full interval, so transient waits
	// never look like deadlock.
	DetectInterval int
	// MaxRetries bounds the abort/re-inject attempts per packet (default
	// 4); a packet aborted beyond the bound is discarded and counted in
	// Result.RecoveryDropped.
	MaxRetries int
	// RetryBackoff is the base re-injection delay in cycles after an abort
	// (default 64); it doubles with every further retry of the same packet.
	RetryBackoff int
	// LivelockThreshold bounds a packet's network age: if a packet is still
	// undelivered LivelockThreshold cycles after its first injection, the
	// run aborts with a *LivelockError (retried and adaptively-misrouted
	// packets must not starve silently). Zero selects the default — four
	// times DeadlockThreshold when RecoverDeadlocks is set, disabled
	// otherwise; NoLivelockCheck disables the bound explicitly.
	LivelockThreshold int
	// Workload, if non-nil, switches injection from the open-loop arrival
	// process to the closed loop it implements: every cycle each live node
	// polls Workload.NextPacket for its next packet, and every delivered
	// packet is reported back through Workload.Delivered — the interface a
	// dependency-driven job engine (package workload) needs to release
	// successor messages only after their inputs arrive. Mutually exclusive
	// with InjectionRate, Pattern, and MeanBurst (validated). Both engines
	// drive the workload through the same shared per-node code, so results
	// stay byte-identical across Engine choices.
	Workload ClosedLoop
	// Trace, if non-nil, receives one CSV line per packet delivered during
	// the measurement window: pkt,src,dst,created,injected,delivered,hops.
	// A header line is written first. Tracing costs one formatted write per
	// packet; leave nil for performance runs.
	Trace io.Writer
	// Engine selects the cycle-evaluation strategy: EngineEvent (default,
	// the O(active) fast path), EngineScan (the original full-scan
	// baseline), or EngineParallel (the multi-core engine). All engines are
	// byte-identical in results; see Engine.
	Engine Engine
	// Workers is the EngineParallel worker-pool size; 0 means GOMAXPROCS.
	// The effective count is capped at one worker per 64 switches (the
	// partition granularity), so small networks degrade gracefully to a
	// single worker. Results never depend on Workers. Ignored by the other
	// engines.
	Workers int
}

// ClosedLoop is a closed-loop packet source: instead of the open-loop
// Bernoulli/ON-OFF arrival process, the simulator polls it for work and
// reports every completed delivery back, which is what a dependency-driven
// workload needs to hold a message until its inputs have arrived. The
// simulator calls the three methods from a single goroutine, in a
// deterministic order that is identical under both engines:
//
//   - NextPacket(v) is called at most once per cycle per live node, in
//     ascending node order, after the cycle's deliveries;
//   - Delivered(tag, cycle) is called once per packet, when its tail flit
//     is consumed by the destination processor, in ascending destination
//     order within a cycle;
//   - Done is consulted by drivers (not the simulator itself) to decide
//     when the workload has fully completed.
//
// Implementations must be deterministic and should not allocate in steady
// state (the event engine's zero-allocation guarantee extends over the
// closed-loop path; see TestSteadyStateAllocs).
type ClosedLoop interface {
	// NextPacket returns the destination and workload tag of the next
	// packet node should inject, or ok=false if the node has nothing
	// eligible this cycle. The tag is echoed back through Delivered.
	NextPacket(node int) (dst int, tag int64, ok bool)
	// Delivered reports that the packet injected with tag completed
	// delivery (tail flit consumed) at the given cycle.
	Delivered(tag int64, cycle int)
	// Done reports whether every packet of the workload has been injected
	// and delivered.
	Done() bool
}

// Selection chooses among the free candidate output channels in Adaptive
// mode (the "selection function" of the adaptive-routing literature; with
// SourceRouted or Deterministic modes it is ignored).
type Selection int

const (
	// SelectRandom picks uniformly among free candidates (default).
	SelectRandom Selection = iota
	// SelectFirst picks the lowest-numbered free candidate; cheap in
	// hardware but concentrates load.
	SelectFirst
	// SelectLeastLoaded picks the free candidate whose downstream buffer
	// has the most space (ties broken by index), the classic congestion-
	// aware selection.
	SelectLeastLoaded
)

// String names the adaptive selection function.
func (s Selection) String() string {
	switch s {
	case SelectFirst:
		return "first"
	case SelectLeastLoaded:
		return "least-loaded"
	default:
		return "random"
	}
}

// NoWarmup requests an explicitly empty warmup period (a WarmupCycles of
// zero selects the default instead).
const NoWarmup = -1

// NoLivelockCheck disables the per-packet age bound explicitly (a
// LivelockThreshold of zero selects the default policy instead).
const NoLivelockCheck = -1

// TotalCycles returns the run length (warmup + measurement) after default
// resolution — the cycle budget a fault-injection driver schedules against.
func (c Config) TotalCycles() int {
	c = c.withDefaults()
	return c.WarmupCycles + c.MeasureCycles
}

func (c Config) withDefaults() Config {
	if c.PacketLength == 0 {
		c.PacketLength = 128
	}
	if c.BufferDepth == 0 {
		c.BufferDepth = 4
	}
	if c.VirtualChannels == 0 {
		c.VirtualChannels = 1
	}
	switch c.WarmupCycles {
	case 0:
		c.WarmupCycles = 3000
	case NoWarmup:
		c.WarmupCycles = 0
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = 12000
	}
	if c.DeadlockThreshold == 0 {
		c.DeadlockThreshold = 20000
	}
	if c.DetectInterval == 0 {
		c.DetectInterval = 512
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 4
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 64
	}
	if c.LivelockThreshold == 0 {
		if c.RecoverDeadlocks {
			c.LivelockThreshold = 4 * c.DeadlockThreshold
		} else {
			c.LivelockThreshold = NoLivelockCheck
		}
	}
	return c
}

func (c Config) validate(n int) error {
	if c.PacketLength < 1 {
		return fmt.Errorf("wormsim: PacketLength %d < 1", c.PacketLength)
	}
	if c.BufferDepth < 1 {
		return fmt.Errorf("wormsim: BufferDepth %d < 1", c.BufferDepth)
	}
	if c.VirtualChannels < 1 || c.VirtualChannels > 8 {
		return fmt.Errorf("wormsim: VirtualChannels %d outside [1,8]", c.VirtualChannels)
	}
	if c.InjectionRate < 0 {
		return fmt.Errorf("wormsim: negative InjectionRate")
	}
	if c.WarmupCycles < 0 || c.MeasureCycles <= 0 {
		return fmt.Errorf("wormsim: bad cycle counts (warmup %d, measure %d)",
			c.WarmupCycles, c.MeasureCycles)
	}
	if c.DetectInterval < 1 {
		return fmt.Errorf("wormsim: DetectInterval %d < 1", c.DetectInterval)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("wormsim: negative MaxRetries %d", c.MaxRetries)
	}
	if c.RetryBackoff < 1 {
		return fmt.Errorf("wormsim: RetryBackoff %d < 1", c.RetryBackoff)
	}
	if c.LivelockThreshold < NoLivelockCheck {
		return fmt.Errorf("wormsim: LivelockThreshold %d < %d", c.LivelockThreshold, NoLivelockCheck)
	}
	if c.Engine != EngineEvent && c.Engine != EngineScan && c.Engine != EngineParallel {
		return fmt.Errorf("wormsim: unknown Engine %d", c.Engine)
	}
	if c.Workers < 0 {
		return fmt.Errorf("wormsim: negative Workers %d", c.Workers)
	}
	if c.Workload != nil && (c.InjectionRate != 0 || c.Pattern != nil || c.MeanBurst != 0) {
		return fmt.Errorf("wormsim: Workload is a closed-loop source; InjectionRate, Pattern, and MeanBurst must stay unset")
	}
	if n < 2 {
		return fmt.Errorf("wormsim: need at least 2 switches, got %d", n)
	}
	return nil
}

// Result carries the counters of one run.
type Result struct {
	// Cycles is the total simulated cycle count (warmup + measurement).
	Cycles int
	// MeasuredCycles is the measurement window length.
	MeasuredCycles int
	// PacketsCreated counts packets generated during the window.
	PacketsCreated int
	// PacketsDelivered counts packets whose tail flit was delivered during
	// the window.
	PacketsDelivered int
	// FlitsDelivered counts flits delivered during the window.
	FlitsDelivered int64
	// AcceptedTraffic is delivered flits per clock per node during the
	// window — the paper's throughput metric.
	AcceptedTraffic float64
	// OfferedTraffic is created flits per clock per node during the window.
	OfferedTraffic float64
	// AvgLatency is the mean, over packets delivered in the window, of
	// (tail delivery cycle - packet creation cycle) — the paper's message
	// latency ("since the packet transmission is initiated at a node until
	// the packet is received"), which includes source queueing.
	AvgLatency float64
	// AvgNetworkLatency excludes source queueing (header injection to tail
	// delivery).
	AvgNetworkLatency float64
	// MaxLatency is the largest single-packet latency in the window.
	MaxLatency int
	// MinLatency is the smallest single-packet latency in the window (0 if
	// nothing was delivered); with light load it equals the uncontended
	// pipeline latency PacketLength + 2*hops + 3.
	MinLatency int
	// ChannelFlits[c] counts flits that crossed switch-to-switch channel c
	// (cgraph channel id, summed over its virtual channels) during the
	// window; feed it to metrics.ComputeNodeStats.
	ChannelFlits []int64
	// InFlightAtEnd is the number of flits still in the network when the
	// run ended (diagnostics; grows with saturation).
	InFlightAtEnd int
	// SourceQueuePeak is the largest number of packets any node's source
	// queue held at once over the whole run — the backpressure the network
	// pushed into the sources (explodes past saturation).
	SourceQueuePeak int
	// P50Latency, P95Latency, and P99Latency are latency percentiles over
	// packets delivered in the window (0 if nothing was delivered). Mean
	// latency hides the tail; under contention the tail is the story.
	P50Latency int
	P95Latency int
	P99Latency int
	// FlitsInjected counts every flit placed on an injection channel over
	// the whole run (warmup included) — the left-hand side of the flit
	// conservation law checked by CheckConservation.
	FlitsInjected int64
	// FlitsDeliveredTotal counts flits delivered over the whole run (warmup
	// included), unlike FlitsDelivered which is window-restricted.
	FlitsDeliveredTotal int64
	// PacketsDropped and FlitsDropped count packets removed by fault
	// injection (KillChannel/KillLink/KillSwitch) and the in-network flits
	// they had at removal time. Zero on fault-free runs.
	PacketsDropped int
	FlitsDropped   int64
	// PacketsUnroutable counts packets discarded at their source because no
	// legal route to their destination existed — possible only after faults
	// (a verified routing function connects all pairs).
	PacketsUnroutable int
	// Deadlock carries the structured diagnostic when the deadlock watchdog
	// fired: the cycle (or set) of blocked virtual channels. It is nil on
	// clean runs. When set, the rest of the Result is partial (the run was
	// aborted).
	Deadlock *DeadlockInfo
	// Livelock carries the structured diagnostic when a packet exceeded
	// the LivelockThreshold age bound. It is nil on clean runs. When set,
	// the rest of the Result is partial (the run was aborted).
	Livelock *LivelockInfo
	// DeadlocksRecovered counts wait-for cycles broken by the online
	// recovery layer (plus frozen-network fallback aborts). Zero unless
	// Config.RecoverDeadlocks is set.
	DeadlocksRecovered int
	// PacketsAborted counts victim-abort events: a packet pulled out of
	// the network back to its source by deadlock recovery. One packet can
	// be aborted several times (once per retry).
	PacketsAborted int
	// FlitsAborted counts the in-network flits removed by those aborts —
	// the recovery term of the conservation law.
	FlitsAborted int64
	// PacketsRetried counts re-injections scheduled after an abort (equal
	// to PacketsAborted minus the aborts that exhausted MaxRetries).
	PacketsRetried int
	// RecoveryDropped counts packets discarded by recovery — retries
	// exhausted, or no route left for the retry after faults.
	RecoveryDropped int
}

// CheckConservation verifies the flit conservation law of a finished run:
// every injected flit is delivered, dropped by a fault, removed by a
// recovery abort, or still in flight. A violation is a simulator bug,
// never a network condition.
func (r *Result) CheckConservation() error {
	want := r.FlitsDeliveredTotal + r.FlitsDropped + r.FlitsAborted + int64(r.InFlightAtEnd)
	if r.FlitsInjected != want {
		return fmt.Errorf("wormsim: flit conservation violated: injected %d != delivered %d + dropped %d + aborted %d + in-flight %d",
			r.FlitsInjected, r.FlitsDeliveredTotal, r.FlitsDropped, r.FlitsAborted, r.InFlightAtEnd)
	}
	return nil
}

// flit is one flow-control unit in a buffer or on a wire.
type flit struct {
	pkt     int32
	idx     int32
	arrived int32 // cycle the flit entered its current resting place
}

// ring is a tiny fixed-capacity FIFO of flits.
type ring struct {
	buf  []flit
	head int
	size int
}

func (r *ring) full() bool   { return r.size == len(r.buf) }
func (r *ring) empty() bool  { return r.size == 0 }
func (r *ring) front() *flit { return &r.buf[r.head] }
func (r *ring) push(f flit)  { r.buf[(r.head+r.size)%len(r.buf)] = f; r.size++ }
func (r *ring) pop() flit {
	f := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.size--
	return f
}

// packet is one in-flight message.
type packet struct {
	src, dst  int32
	length    int32
	created   int32
	injected  int32 // cycle the header entered the injection channel; -1 until then
	sentFlits int32 // flits handed to the injection channel so far
	delivered int32 // flits consumed by the destination processor so far
	dropped   bool  // removed by fault injection or recovery; skip on every path
	route     []int32
	hop       int32 // next route index the header will use (source-routed)
	hops      int32 // switch-to-switch channels traversed by the header
	tag       int64 // closed-loop workload tag (noTag under open loop)
	// Recovery state.
	firstInjected int32 // cycle of the first injection ever; -1 until then (survives aborts)
	retries       int32 // abort/re-inject attempts so far
	notBefore     int32 // earliest re-injection cycle after an abort (backoff)
}

const (
	noOwner = int32(-1)
	noVCL   = int32(-1)
	noTag   = int64(-1)
)

// wctx is the per-worker context every stage body writes through instead of
// shared Simulator fields: scratch buffers, the filled-wire worklists of the
// current cycle, and the deltas of the three cycle-global scalars (progress,
// in-flight count, injected count). The sequential engines run everything
// through wk[0]; the parallel engine gives each worker its own, which keeps
// the shared stage code single-writer, and mergeWorkers folds the deltas
// back in deterministic worker order after every cycle.
type wctx struct {
	moved    bool  // some flit moved this cycle (folds into Simulator.lastMove)
	inFlight int   // net change to the in-flight flit count this cycle
	injected int64 // flits placed on injection wires this cycle

	// fillEject/fillOther collect the wires filled during the current cycle
	// (ejection wires separately: their consumption order is the delivery
	// order, which must be ascending by node). Unused under EngineScan.
	fillEject []int32
	fillOther []int32

	// candBuf/freeBuf are routing scratch (adaptive candidate channels and
	// their free lanes); ord is the event-engine per-switch round-robin
	// scratch.
	candBuf []int
	freeBuf []int32
	ord     []int32

	// spawns stages the packets sampled by the parallel generate phase;
	// the coordinator commits them in worker order (== ascending source
	// node order) so packet ids match the sequential engines.
	spawns []spawnRec

	events bool // engine keeps worklists (event/parallel): noteFill is live
	ejBase int  // first ejection wire index (nCh + n)
}

// spawnRec is one staged packet: source, destination, and the sampled route
// (nil in adaptive mode); ok=false marks an unroutable destination, counted
// at commit time.
type spawnRec struct {
	v, dst int32
	ok     bool
	route  []int32
}

// noteFill records that wire w was filled this cycle, scheduling its
// consumption (delivery for ejection wires, link traversal otherwise) for
// next cycle. A no-op under EngineScan, which rescans everything anyway.
func (wx *wctx) noteFill(w int) {
	if !wx.events {
		return
	}
	if w >= wx.ejBase {
		wx.fillEject = append(wx.fillEject, int32(w))
	} else {
		wx.fillOther = append(wx.fillOther, int32(w))
	}
}

// Simulator runs wormhole simulations for one routing function. Create one
// with New and call Run; a Simulator is single-use.
//
// Internal geometry: physical "wires" are indexed 0..nCh-1 (switch-to-
// switch channels, matching cgraph channel ids), then nCh..nCh+n-1
// (injection) and nCh+n..nCh+2n-1 (ejection). Virtual-channel lanes
// ("vclanes") are indexed c*nVC+v for switch-to-switch channel c and
// injection/ejection appended after (those always have one lane).
type Simulator struct {
	cfg   Config
	fn    *routing.Function
	tb    routing.PathSource
	cg    *cgraph.CG
	n     int // switches
	nCh   int // switch-to-switch channels
	nVC   int
	wires int // nCh + 2n physical transport resources
	vcls  int // nCh*nVC + 2n virtual-channel lanes

	bufs      []ring  // per vclane; ejection lanes have no buffer (nil buf)
	wire      []flit  // one register per wire
	wireVCL   []int32 // target vclane of the flit on each wire
	wireFull  []bool
	owner     []int32   // output allocation per vclane
	nextOut   []int32   // per input vclane: output vclane held by the packet streaming through
	rr        []int     // per switch round-robin pointer
	inVCLs    [][]int32 // per switch: its input vclanes (channel VCs + injection)
	packets   []packet
	queues    [][]int32 // per node source queue of packet ids
	qHead     []int
	sources   []traffic.Generator
	pathRng   []*rng.Rng
	arbRng    *rng.Rng
	latencies []int32 // per delivered packet in the window
	now       int32
	lastMove  int32
	inFlight  int // flits currently inside the network (not source queues)

	measuring bool
	cycle     int  // completed cycles (warmup + measurement so far)
	started   bool // first RunCycles call happened (trace header written)
	finished  bool
	paused    bool   // injection of new packets suspended (draining)
	faulted   bool   // at least one fault was injected
	deadWire  []bool // per physical wire: killed by fault injection
	deadNode  []bool // per switch: killed by fault injection

	retrying []int32 // ids of packets aborted at least once and not yet done

	// probeRng is the dedicated path-sampling stream for injected probes
	// (InjectProbe): it is split from the root seed after every background
	// stream, so probe injection never perturbs the per-node path or
	// arrival randomness — the co-simulation oracle's contract (oracle.go).
	probeRng *rng.Rng
	probes   []probeRec // one record per injected probe, indexed by probe id

	// wk holds the per-worker mutable contexts the stage bodies write
	// through: filled-wire lists, routing scratch, and the cycle's progress
	// and counter deltas (merged by mergeWorkers). The sequential engines
	// use wk[0] only; EngineParallel sizes it to its worker count so every
	// stage body stays single-writer without locks.
	wk []wctx

	// ev holds the event-driven scheduling state (active-lane bitmasks and
	// filled-wire worklists); nil under EngineScan, shared by EngineEvent
	// and EngineParallel. Every mutation site that can wake a lane, wire,
	// or source feeds it, so all engines share one implementation of the
	// physics.
	ev *evState

	// par holds the parallel engine's partition, wavefront schedule, and
	// worker pool; nil except under EngineParallel.
	par *parState

	// TraceMove, if non-nil, is called whenever a flit is placed on a wire
	// (switch output, injection, or ejection crossing), with the target
	// vclane. Tests use it to assert wormhole invariants; it must not
	// mutate the simulator.
	TraceMove func(vclane, pkt, idx int32)

	// OnRecovery, if non-nil, is called once per broken deadlock with the
	// detected wait-for cycle (nil for a frozen-network fallback abort) and
	// the victim packet id. Tests use it to assert victim selection; it
	// must not mutate the simulator.
	OnRecovery func(cycle []BlockedVC, victim int32)

	res Result
}

// New prepares a simulator for the routing function fn, using tb for path
// selection — normally routing.NewTable(fn) (sharing one table across runs
// amortizes its construction), or a fib.Router to simulate against compiled
// forwarding tables. The function must already be verified — New rejects
// nil inputs but does not re-run the expensive verification.
func New(fn *routing.Function, tb routing.PathSource, cfg Config) (*Simulator, error) {
	if fn == nil || tb == nil {
		return nil, fmt.Errorf("wormsim: nil routing function or table")
	}
	cfg = cfg.withDefaults()
	cg := fn.CG()
	if err := cfg.validate(cg.N()); err != nil {
		return nil, err
	}
	n := cg.N()
	nCh := cg.NumChannels()
	nVC := cfg.VirtualChannels
	s := &Simulator{
		cfg:   cfg,
		fn:    fn,
		tb:    tb,
		cg:    cg,
		n:     n,
		nCh:   nCh,
		nVC:   nVC,
		wires: nCh + 2*n,
		vcls:  nCh*nVC + 2*n,
	}
	s.bufs = make([]ring, s.vcls)
	for l := 0; l < nCh*nVC+n; l++ { // ejection lanes carry no buffer
		s.bufs[l].buf = make([]flit, cfg.BufferDepth)
	}
	s.wire = make([]flit, s.wires)
	s.wireVCL = make([]int32, s.wires)
	s.wireFull = make([]bool, s.wires)
	s.owner = make([]int32, s.vcls)
	s.nextOut = make([]int32, s.vcls)
	for i := range s.owner {
		s.owner[i] = noOwner
		s.nextOut[i] = noVCL
	}
	s.rr = make([]int, n)
	s.inVCLs = make([][]int32, n)
	for v := 0; v < n; v++ {
		lanes := make([]int32, 0, len(cg.In[v])*nVC+1)
		for _, c := range cg.In[v] {
			for vc := 0; vc < nVC; vc++ {
				lanes = append(lanes, int32(c*nVC+vc))
			}
		}
		lanes = append(lanes, s.injVCL(v))
		s.inVCLs[v] = lanes
	}
	s.queues = make([][]int32, n)
	s.qHead = make([]int, n)
	s.sources = make([]traffic.Generator, n)
	s.pathRng = make([]*rng.Rng, n)
	root := rng.New(cfg.Seed)
	if cfg.Workload == nil {
		pattern := cfg.Pattern
		if pattern == nil {
			pattern = traffic.Uniform{N: n}
		}
		for v := 0; v < n; v++ {
			var src traffic.Generator
			var err error
			if cfg.MeanBurst > 0 {
				src, err = traffic.NewBurstySource(v, cfg.InjectionRate, cfg.MeanBurst, cfg.PacketLength, pattern, root.Split())
			} else {
				src, err = traffic.NewSource(v, cfg.InjectionRate, cfg.PacketLength, pattern, root.Split())
			}
			if err != nil {
				return nil, err
			}
			s.sources[v] = src
			s.pathRng[v] = root.Split()
		}
	} else {
		// Closed loop: no arrival process, but path sampling still draws
		// from the same per-node streams (split in the same order, so a
		// given Seed explores the same path randomness either way).
		for v := 0; v < n; v++ {
			root.Split()
			s.pathRng[v] = root.Split()
		}
	}
	s.arbRng = root.Split()
	s.probeRng = root.Split()
	s.deadWire = make([]bool, s.wires)
	s.deadNode = make([]bool, n)
	s.res.ChannelFlits = make([]int64, nCh)
	if cfg.Engine != EngineScan {
		s.ev = newEvState(s)
	}
	workers := 1
	if cfg.Engine == EngineParallel {
		s.par = newParState(s, cfg.Workers)
		workers = s.par.workers
	}
	s.wk = make([]wctx, workers)
	for i := range s.wk {
		s.wk[i].events = cfg.Engine != EngineScan
		s.wk[i].ejBase = nCh + n
	}
	return s, nil
}

// Geometry helpers.

// injVCL returns node v's injection vclane.
func (s *Simulator) injVCL(v int) int32 { return int32(s.nCh*s.nVC + v) }

// ejectVCL returns node v's ejection vclane.
func (s *Simulator) ejectVCL(v int) int32 { return int32(s.nCh*s.nVC + s.n + v) }

// vclWire returns the physical wire transporting a vclane's flits.
func (s *Simulator) vclWire(vcl int32) int32 {
	if int(vcl) < s.nCh*s.nVC {
		return vcl / int32(s.nVC)
	}
	return vcl - int32(s.nCh*s.nVC) + int32(s.nCh)
}

// vclChannel returns the cgraph channel of a switch-to-switch vclane, or
// -1 for injection/ejection lanes.
func (s *Simulator) vclChannel(vcl int32) int {
	if int(vcl) < s.nCh*s.nVC {
		return int(vcl) / s.nVC
	}
	return -1
}

// Run executes the configured warmup and measurement and returns the
// counters. It returns an error for simulated deadlock (a *DeadlockError
// carrying the blocked-channel diagnostic, also available via
// Result.Deadlock) or a trace write failure; on error the returned Result
// holds the partial counters accumulated so far.
func (s *Simulator) Run() (*Result, error) {
	total := s.cfg.WarmupCycles + s.cfg.MeasureCycles
	if err := s.RunCycles(total - s.cycle); err != nil {
		return &s.res, err
	}
	return s.Finish(), nil
}

// Cycle returns the number of cycles simulated so far.
func (s *Simulator) Cycle() int { return s.cycle }

// InFlight returns the number of flits currently inside the network.
func (s *Simulator) InFlight() int { return s.inFlight }

// RunCycles advances the simulation by k cycles. It is the incremental form
// of Run, used by fault-injection drivers that interleave simulation with
// topology changes: warmup/measurement bookkeeping is shared with Run, and
// the deadlock watchdog stays armed. It returns a *DeadlockError if the
// watchdog fires.
func (s *Simulator) RunCycles(k int) error {
	if s.finished {
		return fmt.Errorf("wormsim: RunCycles after Finish")
	}
	if !s.started {
		s.started = true
		if s.cfg.Trace != nil {
			if _, err := fmt.Fprintln(s.cfg.Trace, "pkt,src,dst,created,injected,delivered,hops"); err != nil {
				return fmt.Errorf("wormsim: writing trace header: %w", err)
			}
		}
	}
	measureEnd := s.cfg.WarmupCycles + s.cfg.MeasureCycles
	scanning := s.cfg.RecoverDeadlocks || s.cfg.LivelockThreshold != NoLivelockCheck
	for i := 0; i < k; i++ {
		s.cycle++
		s.now++
		s.measuring = s.cycle > s.cfg.WarmupCycles && s.cycle <= measureEnd
		if s.par != nil {
			s.stepParallel()
		} else if s.ev != nil {
			s.stepEvent()
		} else {
			s.deliver()
			s.linkStage()
			s.switchStage()
			s.feedInjection()
			s.generate()
		}
		s.mergeWorkers()
		if scanning && s.cycle%s.cfg.DetectInterval == 0 {
			if err := s.recoveryScan(); err != nil {
				return err
			}
		}
		if s.inFlight > 0 && s.now-s.lastMove > int32(s.cfg.DeadlockThreshold) {
			info := s.deadlockInfo()
			s.res.Deadlock = info
			return &DeadlockError{Info: info}
		}
	}
	return nil
}

// mergeWorkers folds the per-worker cycle deltas back into the shared
// scalars, in ascending worker order. It runs between cycles on the caller
// goroutine, before the recovery scan and the deadlock watchdog read
// lastMove and inFlight — the same point the sequential engines had
// finished updating them at.
func (s *Simulator) mergeWorkers() {
	for i := range s.wk {
		wx := &s.wk[i]
		if wx.moved {
			s.lastMove = s.now
			wx.moved = false
		}
		s.inFlight += wx.inFlight
		wx.inFlight = 0
		s.res.FlitsInjected += wx.injected
		wx.injected = 0
	}
}

// Finish computes the derived metrics and returns the final Result. It is
// idempotent; Run calls it automatically.
func (s *Simulator) Finish() *Result {
	if !s.finished {
		s.finished = true
		s.releaseWorkers()
		s.finish(s.cycle)
	}
	return &s.res
}

func (s *Simulator) finish(total int) {
	s.res.Cycles = total
	s.res.MeasuredCycles = s.cfg.MeasureCycles
	denom := float64(s.cfg.MeasureCycles) * float64(s.n)
	s.res.AcceptedTraffic = float64(s.res.FlitsDelivered) / denom
	s.res.OfferedTraffic = float64(s.res.PacketsCreated) * float64(s.cfg.PacketLength) / denom
	if s.res.PacketsDelivered > 0 {
		s.res.AvgLatency /= float64(s.res.PacketsDelivered)
		s.res.AvgNetworkLatency /= float64(s.res.PacketsDelivered)
	}
	s.res.InFlightAtEnd = s.inFlight
	if len(s.latencies) > 0 {
		sort.Slice(s.latencies, func(i, j int) bool { return s.latencies[i] < s.latencies[j] })
		pct := func(p float64) int {
			i := int(p * float64(len(s.latencies)-1))
			return int(s.latencies[i])
		}
		s.res.P50Latency = pct(0.50)
		s.res.P95Latency = pct(0.95)
		s.res.P99Latency = pct(0.99)
	}
}

// deliver drains ejection wires: the processor consumes one flit per clock
// per ejection channel.
func (s *Simulator) deliver() {
	for v := 0; v < s.n; v++ {
		s.deliverEject(v)
	}
}

// deliverEject consumes the flit on node v's ejection wire, if one arrived
// before this cycle. It is the per-node body shared by all engines, and it
// always runs on the coordinating goroutine in ascending node order: the
// latency ledger, the float accumulations, the CSV trace, and the
// closed-loop Delivered callbacks are all order-sensitive, so delivery is
// the one stage the parallel engine never fans out. Its writes to the
// shared scalars therefore stay direct.
func (s *Simulator) deliverEject(v int) {
	w := s.vclWire(s.ejectVCL(v))
	if !s.wireFull[w] || s.wire[w].arrived >= s.now {
		return
	}
	f := s.wire[w]
	s.wireFull[w] = false
	s.inFlight--
	s.lastMove = s.now
	p := &s.packets[f.pkt]
	p.delivered++
	s.res.FlitsDeliveredTotal++
	if s.measuring {
		s.res.FlitsDelivered++
	}
	if f.idx == p.length-1 { // tail: packet complete
		if s.measuring {
			s.res.PacketsDelivered++
			lat := int(s.now - p.created)
			s.res.AvgLatency += float64(lat)
			s.res.AvgNetworkLatency += float64(s.now - p.injected)
			if lat > s.res.MaxLatency {
				s.res.MaxLatency = lat
			}
			if s.res.MinLatency == 0 || lat < s.res.MinLatency {
				s.res.MinLatency = lat
			}
			s.latencies = append(s.latencies, int32(lat))
		}
		if s.cfg.Trace != nil && s.measuring {
			fmt.Fprintf(s.cfg.Trace, "%d,%d,%d,%d,%d,%d,%d\n",
				f.pkt, p.src, p.dst, p.created, p.injected, s.now, p.hops)
		}
		p.route = nil // release path memory
		if s.cfg.Workload != nil {
			s.cfg.Workload.Delivered(p.tag, int(s.now))
		} else if p.tag != noTag {
			// Open loop + a tag: the packet is an injected probe
			// (InjectProbe assigns probe ids as tags); close its record.
			pr := &s.probes[p.tag]
			pr.deliveredAt = s.now
			pr.hops = p.hops
		}
	}
}

// linkStage moves flits from wires into the downstream virtual-channel
// buffers (one clock of link delay). Buffer space was reserved when the
// flit entered the wire (credit-based flow control), so the push cannot
// fail.
func (s *Simulator) linkStage() {
	wx := &s.wk[0]
	for w := 0; w < s.nCh+s.n; w++ { // ejection wires drain in deliver
		s.linkWire(wx, w)
	}
}

// linkWire completes the link traversal of the flit on wire w, if one
// arrived before this cycle: it lands in the downstream virtual-channel
// buffer, waking that lane. It is the per-wire body shared by all engines;
// under EngineParallel it runs on the worker owning the downstream switch,
// so the buffer push and the lane wakeup stay single-writer.
func (s *Simulator) linkWire(wx *wctx, w int) {
	if !s.wireFull[w] || s.wire[w].arrived >= s.now {
		return
	}
	b := &s.bufs[s.wireVCL[w]]
	if b.full() {
		// Credit accounting guarantees space; a full buffer here is a
		// simulator bug, not a network condition.
		panic("wormsim: wire delivered into a full buffer (credit accounting broken)")
	}
	f := s.wire[w]
	f.arrived = s.now
	b.push(f)
	s.wireFull[w] = false
	wx.moved = true
	if s.ev != nil {
		s.ev.markLane(s.wireVCL[w])
	}
}

// switchStage moves buffer-head flits through the crossbars: headers route
// and allocate output virtual channels; body flits follow their packet's
// channel.
func (s *Simulator) switchStage() {
	wx := &s.wk[0]
	for v := 0; v < s.n; v++ {
		lanes := s.inVCLs[v]
		k := len(lanes)
		if k == 0 {
			continue
		}
		start := s.rr[v] % k
		s.rr[v]++
		for i := 0; i < k; i++ {
			s.tryForward(wx, v, lanes[(start+i)%k])
		}
	}
}

// canAccept reports whether a flit may be placed on out's wire right now:
// the wire register is free, not killed by a fault, and the downstream
// buffer has space (ejection lanes have no buffer; the processor always
// consumes).
func (s *Simulator) canAccept(out int32) bool {
	if w := s.vclWire(out); s.wireFull[w] || s.deadWire[w] {
		return false
	}
	if int(out) >= s.nCh*s.nVC+s.n { // ejection
		return true
	}
	return !s.bufs[out].full()
}

// tryForward attempts to advance the head flit of input vclane li at
// switch v. Under EngineParallel it runs on the worker owning v; every
// resource it touches — v's input lanes, the lanes and wires of channels
// leaving v, the header packet's hop fields — is written only during v's
// crossbar turn, and the wavefront schedule sequences adjacent switches.
func (s *Simulator) tryForward(wx *wctx, v int, li int32) {
	b := &s.bufs[li]
	if b.empty() {
		return
	}
	f := b.front()
	if f.arrived >= s.now {
		return
	}
	out := s.nextOut[li]
	if f.idx == 0 {
		// Header: needs routing + output allocation (its one clock through
		// the switch is the routing/arbitration clock).
		out = s.routeHeader(wx, v, li, f)
		if out == noVCL {
			return // blocked: desired output(s) busy
		}
	}
	if out == noVCL || !s.canAccept(out) {
		return
	}
	p := &s.packets[f.pkt]
	fl := b.pop()
	fl.arrived = s.now
	w := s.vclWire(out)
	s.wire[w] = fl
	s.wireVCL[w] = out
	s.wireFull[w] = true
	wx.moved = true
	wx.noteFill(int(w))
	if ch := s.vclChannel(out); ch >= 0 {
		if s.measuring {
			s.res.ChannelFlits[ch]++
		}
		if fl.idx == 0 {
			p.hops++
		}
	}
	if s.TraceMove != nil {
		s.TraceMove(out, fl.pkt, fl.idx)
	}
	if fl.idx == 0 {
		s.nextOut[li] = out
	}
	if fl.idx == p.length-1 {
		// Tail transmitted: release the output virtual channel and the
		// input lane's packet binding.
		s.owner[out] = noOwner
		s.nextOut[li] = noVCL
	}
}

// routeHeader picks and allocates an output vclane for a header flit at
// switch v that arrived on vclane li, or returns noVCL if it must wait.
func (s *Simulator) routeHeader(wx *wctx, v int, li int32, f *flit) int32 {
	p := &s.packets[f.pkt]
	if int32(v) == p.dst {
		out := s.ejectVCL(v)
		if s.owner[out] != noOwner || !s.canAccept(out) {
			return noVCL
		}
		s.owner[out] = f.pkt
		return out
	}
	switch s.cfg.Mode {
	case SourceRouted, Deterministic:
		ch := p.route[p.hop]
		out := s.allocVC(int(ch), f.pkt)
		if out == noVCL {
			return noVCL
		}
		p.hop++
		return out
	default: // Adaptive
		state := routing.InjectionState(v)
		if ch := s.vclChannel(li); ch >= 0 {
			state = ch
		}
		wx.candBuf = s.tb.NextChannels(int(p.dst), state, wx.candBuf[:0])
		wx.freeBuf = wx.freeBuf[:0]
		for _, c := range wx.candBuf {
			for vc := 0; vc < s.nVC; vc++ {
				out := int32(c*s.nVC + vc)
				if s.owner[out] == noOwner && s.canAccept(out) {
					wx.freeBuf = append(wx.freeBuf, out)
					break // one free VC per candidate channel is enough
				}
			}
		}
		if len(wx.freeBuf) == 0 {
			return noVCL
		}
		out := s.selectVCL(wx.freeBuf)
		s.owner[out] = f.pkt
		return out
	}
}

// selectVCL applies the configured selection function to a non-empty set
// of free candidate vclanes.
func (s *Simulator) selectVCL(free []int32) int32 {
	switch s.cfg.Select {
	case SelectFirst:
		best := free[0]
		for _, c := range free[1:] {
			if c < best {
				best = c
			}
		}
		return best
	case SelectLeastLoaded:
		best := free[0]
		bestSpace := s.cfg.BufferDepth - s.bufs[best].size
		for _, c := range free[1:] {
			if space := s.cfg.BufferDepth - s.bufs[c].size; space > bestSpace {
				best, bestSpace = c, space
			}
		}
		return best
	default:
		return free[s.arbRng.Intn(len(free))]
	}
}

// allocVC claims the first free, currently-acceptable virtual channel of a
// switch-to-switch channel for a header, or returns noVCL.
func (s *Simulator) allocVC(ch int, pkt int32) int32 {
	for vc := 0; vc < s.nVC; vc++ {
		out := int32(ch*s.nVC + vc)
		if s.owner[out] == noOwner && s.canAccept(out) {
			s.owner[out] = pkt
			return out
		}
	}
	return noVCL
}

// feedInjection streams the head packet of each source queue into the
// node's injection channel, one flit per clock.
func (s *Simulator) feedInjection() {
	wx := &s.wk[0]
	for v := 0; v < s.n; v++ {
		s.feedNode(wx, v)
	}
}

// feedNode advances node v's source queue by at most one flit. It is the
// per-node body shared by all engines; the returned bool reports whether
// the node has nothing left to inject (dead, or its queue is empty), which
// the event engine uses to retire the node from its active-source set.
// Under EngineParallel it runs on the worker owning v: the injection wire,
// the source queue, and the streaming packet's injection fields belong to v
// alone.
func (s *Simulator) feedNode(wx *wctx, v int) bool {
	if s.deadNode[v] {
		return true
	}
	q := s.queues[v]
	// Skip packets dropped by fault injection while queued.
	for s.qHead[v] < len(q) && s.packets[q[s.qHead[v]]].dropped {
		s.qHead[v]++
	}
	h := s.qHead[v]
	if h >= len(q) {
		return true
	}
	l := s.injVCL(v)
	w := s.vclWire(l)
	if s.wireFull[w] || s.deadWire[w] || s.bufs[l].full() {
		return false
	}
	pid := q[h]
	p := &s.packets[pid]
	if p.sentFlits == 0 {
		if s.paused {
			// Static draining: packets already streaming finish, new
			// ones wait for the reconfiguration to complete.
			return false
		}
		if p.notBefore > s.now {
			return false // aborted packet still backing off before its retry
		}
		p.injected = s.now
		if p.firstInjected < 0 {
			p.firstInjected = s.now
		}
	}
	s.wire[w] = flit{pkt: pid, idx: p.sentFlits, arrived: s.now}
	s.wireVCL[w] = l
	s.wireFull[w] = true
	wx.inFlight++
	wx.injected++
	wx.moved = true
	wx.noteFill(int(w))
	if s.TraceMove != nil {
		s.TraceMove(l, pid, p.sentFlits)
	}
	p.sentFlits++
	if p.sentFlits == p.length {
		s.qHead[v]++
		// Compact the queue occasionally to bound memory.
		if s.qHead[v] > 1024 && s.qHead[v]*2 > len(q) {
			s.queues[v] = append(s.queues[v][:0], q[s.qHead[v]:]...)
			s.qHead[v] = 0
		}
	}
	return s.qHead[v] >= len(s.queues[v])
}

// generate creates new packets: from the open-loop arrival processes, or,
// under Config.Workload, by polling the closed-loop source. Both branches
// funnel into spawnPacket, so path selection, unroutable accounting, and
// event-engine wakeups are identical.
func (s *Simulator) generate() {
	wx := &s.wk[0]
	if s.cfg.Workload != nil {
		for v := 0; v < s.n; v++ {
			if s.deadNode[v] {
				continue
			}
			dst, tag, ok := s.cfg.Workload.NextPacket(v)
			if !ok {
				continue
			}
			s.spawnPacket(wx, v, dst, tag)
		}
		return
	}
	for v := 0; v < s.n; v++ {
		if s.deadNode[v] {
			continue
		}
		dst, ok := s.sources[v].Tick()
		if !ok {
			continue
		}
		s.spawnPacket(wx, v, dst, noTag)
	}
}

// spawnPacket creates one packet from v to dst, samples its route per the
// configured mode, and queues it at the source. It is the shared tail of
// both injection processes; a packet to an unreachable destination (only
// possible after faults) is discarded and counted in PacketsUnroutable.
func (s *Simulator) spawnPacket(wx *wctx, v, dst int, tag int64) {
	route, ok := s.sampleRoute(wx, v, dst)
	if !ok {
		s.res.PacketsUnroutable++
		return
	}
	s.commitPacket(v, dst, tag, route, int32(s.cfg.PacketLength))
}

// sampleRoute draws a route for a packet from v to dst per the configured
// mode: the route channels (source-routed/deterministic), or nil with a
// reachability probe (adaptive — so a packet to a dead switch never enters
// the network and wanders forever). ok=false means no legal route exists.
// All randomness comes from v's private path stream and the shared state it
// reads is immutable during a cycle, so the parallel generate phase may
// call it concurrently for distinct v.
func (s *Simulator) sampleRoute(wx *wctx, v, dst int) (route []int32, ok bool) {
	switch s.cfg.Mode {
	case SourceRouted:
		path, err := s.tb.SamplePath(v, dst, s.pathRng[v])
		if err != nil {
			// After a fault the destination may be legitimately
			// unreachable (a dead switch); on a fault-free run a
			// verified function cannot produce this, so it is a
			// programming error.
			if !s.faulted {
				panic(err)
			}
			return nil, false
		}
		route = make([]int32, len(path))
		for i, c := range path {
			route[i] = int32(c)
		}
		return route, true
	case Deterministic:
		path, err := s.tb.FixedPath(v, dst)
		if err != nil {
			if !s.faulted {
				panic(err)
			}
			return nil, false
		}
		route = make([]int32, len(path))
		for i, c := range path {
			route[i] = int32(c)
		}
		return route, true
	default: // Adaptive
		if s.faulted {
			if wx.candBuf = s.tb.NextChannels(dst, routing.InjectionState(v), wx.candBuf[:0]); len(wx.candBuf) == 0 {
				return nil, false
			}
		}
		return nil, true
	}
}

// commitPacket appends one sampled packet to the simulation: the id it gets
// is its position in the packet table, so commits must happen in ascending
// source-node order — sequentially in generate, and in worker order (==
// ascending node order, since workers own contiguous ranges) when the
// parallel engine drains its staged spawns.
func (s *Simulator) commitPacket(v, dst int, tag int64, route []int32, length int32) {
	p := packet{
		src:           int32(v),
		dst:           int32(dst),
		length:        length,
		created:       s.now,
		injected:      -1,
		firstInjected: -1,
		tag:           tag,
		route:         route,
	}
	id := int32(len(s.packets))
	s.packets = append(s.packets, p)
	s.queues[v] = append(s.queues[v], id)
	if s.ev != nil {
		s.ev.markSource(v)
	}
	if depth := len(s.queues[v]) - s.qHead[v]; depth > s.res.SourceQueuePeak {
		s.res.SourceQueuePeak = depth
	}
	if s.measuring {
		s.res.PacketsCreated++
	}
}
