package wormsim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cgraph"
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/turnmodel"
)

func buildFn(t testing.TB, g *topology.Graph, alg routing.Algorithm) (*routing.Function, *routing.Table) {
	t.Helper()
	tr, err := ctree.Build(g, ctree.M1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cg := cgraph.Build(tr)
	f, err := alg.Build(cg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	return f, routing.NewTable(f)
}

func randomFn(t testing.TB, seed uint64, switches, ports int, alg routing.Algorithm) (*routing.Function, *routing.Table) {
	t.Helper()
	g, err := topology.RandomIrregular(topology.IrregularConfig{Switches: switches, Ports: ports}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return buildFn(t, g, alg)
}

func run(t testing.TB, f *routing.Function, tb *routing.Table, cfg Config) *Result {
	t.Helper()
	sim, err := New(f, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	f, tb := buildFn(t, topology.Line(3), routing.UpDown{})
	bad := []Config{
		{PacketLength: -1},
		{BufferDepth: -2},
		{InjectionRate: -0.1},
		{WarmupCycles: -2},
		{MeasureCycles: -5},
	}
	for i, cfg := range bad {
		if _, err := New(f, tb, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(nil, tb, Config{}); err == nil {
		t.Error("nil function accepted")
	}
	if _, err := New(f, nil, Config{}); err == nil {
		t.Error("nil table accepted")
	}
}

// TestUncontendedLatencyFormula pins the pipeline timing: on a 2-switch
// network with negligible load, every packet crosses H=1 switch-to-switch
// channel and must arrive with latency exactly PacketLength + 2H + 3
// (1 injection clock + per-hop link and switch clocks + ejection link and
// delivery clocks, plus the pipeline tail).
func TestUncontendedLatencyFormula(t *testing.T) {
	f, tb := buildFn(t, topology.Line(2), routing.UpDown{})
	for _, plen := range []int{1, 4, 16, 128} {
		cfg := Config{
			PacketLength:  plen,
			InjectionRate: 0.001 * float64(plen),
			WarmupCycles:  100,
			MeasureCycles: 60000,
			Seed:          7,
		}
		res := run(t, f, tb, cfg)
		if res.PacketsDelivered < 10 {
			t.Fatalf("plen %d: only %d packets delivered", plen, res.PacketsDelivered)
		}
		want := plen + 2 + 3
		if res.MinLatency != want {
			t.Fatalf("plen %d: min latency %d, want %d", plen, res.MinLatency, want)
		}
		// Self-queueing at the source adds a small average overhead even at
		// this load; it must stay small.
		if res.AvgLatency < float64(want) || res.AvgLatency > float64(want)+0.15*float64(plen)+2 {
			t.Fatalf("plen %d: avg latency %.3f, want close to %d", plen, res.AvgLatency, want)
		}
	}
}

func TestUncontendedLatencyScalesWithHops(t *testing.T) {
	// On a line of 5 switches under up*/down*, a packet from 0 to k crosses
	// k channels: latency = L + 2k + 3. With near-zero load, the average
	// over uniform pairs must match the expectation of that formula.
	f, tb := buildFn(t, topology.Line(5), routing.UpDown{})
	cfg := Config{
		PacketLength:  8,
		InjectionRate: 0.004,
		WarmupCycles:  100,
		MeasureCycles: 200000,
		Seed:          3,
	}
	res := run(t, f, tb, cfg)
	if res.PacketsDelivered < 100 {
		t.Fatalf("only %d packets delivered", res.PacketsDelivered)
	}
	// E[hops] for a uniform pair on a 5-line: sum |i-j| / 20 = 2.
	want := 8 + 2*2.0 + 3
	if math.Abs(res.AvgLatency-want) > 0.5 {
		t.Fatalf("avg latency %.3f, want about %.1f", res.AvgLatency, want)
	}
}

func TestDeterminism(t *testing.T) {
	f, tb := randomFn(t, 5, 24, 4, routing.LTurn{})
	cfg := Config{
		PacketLength:  16,
		InjectionRate: 0.1,
		WarmupCycles:  500,
		MeasureCycles: 3000,
		Seed:          42,
	}
	a := run(t, f, tb, cfg)
	b := run(t, f, tb, cfg)
	if a.FlitsDelivered != b.FlitsDelivered || a.PacketsDelivered != b.PacketsDelivered ||
		a.AvgLatency != b.AvgLatency || a.PacketsCreated != b.PacketsCreated {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	for c := range a.ChannelFlits {
		if a.ChannelFlits[c] != b.ChannelFlits[c] {
			t.Fatalf("channel counter %d differs", c)
		}
	}
	cfg.Seed = 43
	c := run(t, f, tb, cfg)
	if c.FlitsDelivered == a.FlitsDelivered && c.AvgLatency == a.AvgLatency {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestLowLoadDeliversOffered(t *testing.T) {
	// Well below saturation, accepted traffic tracks offered traffic.
	f, tb := randomFn(t, 9, 32, 4, core.DownUp{})
	cfg := Config{
		PacketLength:  16,
		InjectionRate: 0.05,
		WarmupCycles:  2000,
		MeasureCycles: 20000,
		Seed:          11,
	}
	res := run(t, f, tb, cfg)
	if res.AcceptedTraffic < 0.8*cfg.InjectionRate || res.AcceptedTraffic > 1.2*cfg.InjectionRate {
		t.Fatalf("accepted %.4f vs offered %.4f", res.AcceptedTraffic, cfg.InjectionRate)
	}
	if math.Abs(res.OfferedTraffic-cfg.InjectionRate) > 0.01 {
		t.Fatalf("offered traffic %.4f, want about %.4f", res.OfferedTraffic, cfg.InjectionRate)
	}
}

func TestSaturationMonotonicity(t *testing.T) {
	// Accepted traffic must not collapse as offered load rises, and must
	// eventually fall well short of offered load (saturation).
	f, tb := randomFn(t, 13, 32, 4, routing.UpDown{})
	rates := []float64{0.02, 0.08, 0.2, 0.5, 0.9}
	var accepted []float64
	for _, r := range rates {
		res := run(t, f, tb, Config{
			PacketLength:  32,
			InjectionRate: r,
			WarmupCycles:  2000,
			MeasureCycles: 8000,
			Seed:          5,
		})
		accepted = append(accepted, res.AcceptedTraffic)
	}
	if accepted[1] <= accepted[0]*0.9 {
		t.Fatalf("accepted fell from %.4f to %.4f while under-saturated", accepted[0], accepted[1])
	}
	last := accepted[len(accepted)-1]
	if last >= 0.9*rates[len(rates)-1] {
		t.Fatalf("no saturation visible: accepted %.4f at offered %.2f", last, rates[len(rates)-1])
	}
	if last <= 0 {
		t.Fatal("throughput collapsed to zero at saturation")
	}
}

func TestChannelCountersConsistent(t *testing.T) {
	// On a 2-switch network every packet crosses exactly one switch-to-
	// switch channel, so the window's channel crossings must match the
	// window's delivered flits up to boundary effects (flits that crossed
	// near a window edge but were delivered on the other side).
	g := topology.Line(2)
	f, tb := buildFn(t, g, routing.UpDown{})
	cfg := Config{
		PacketLength:  4,
		InjectionRate: 0.2,
		WarmupCycles:  500,
		MeasureCycles: 4000,
		Seed:          2,
	}
	res := run(t, f, tb, cfg)
	cg := f.CG()
	c01, _ := cg.ChannelID(0, 1)
	c10, _ := cg.ChannelID(1, 0)
	if res.ChannelFlits[c01] == 0 || res.ChannelFlits[c10] == 0 {
		t.Fatal("both directions should carry traffic under uniform load")
	}
	sum := res.ChannelFlits[c01] + res.ChannelFlits[c10]
	slack := int64(10 * cfg.PacketLength)
	if sum < res.FlitsDelivered-slack || sum > res.FlitsDelivered+slack {
		t.Fatalf("channel crossings %d inconsistent with %d delivered flits",
			sum, res.FlitsDelivered)
	}
}

func TestWormholeNoInterleaving(t *testing.T) {
	// On every lane, the flit sequence must be whole packets in order:
	// idx 0,1,...,L-1 of one packet, then the next packet.
	f, tb := randomFn(t, 21, 24, 4, core.DownUp{})
	cfg := Config{
		PacketLength:  16,
		InjectionRate: 0.4, // heavy load: plenty of contention
		WarmupCycles:  NoWarmup,
		MeasureCycles: 6000,
		Seed:          17,
	}
	sim, err := New(f, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type laneState struct {
		pkt int32
		idx int32
	}
	states := map[int32]laneState{}
	violations := 0
	sim.TraceMove = func(lane, pkt, idx int32) {
		st, ok := states[lane]
		if idx == 0 {
			if ok && st.idx != int32(cfg.PacketLength)-1 {
				violations++
			}
		} else {
			if !ok || st.pkt != pkt || st.idx != idx-1 {
				violations++
			}
		}
		states[lane] = laneState{pkt, idx}
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if violations > 0 {
		t.Fatalf("%d wormhole interleaving violations", violations)
	}
}

func TestFlitConservation(t *testing.T) {
	// Every generated flit is eventually delivered or still in flight /
	// queued at the end; with measurement spanning the whole run we can
	// account exactly.
	f, tb := randomFn(t, 31, 20, 4, routing.LTurn{})
	cfg := Config{
		PacketLength:  8,
		InjectionRate: 0.1,
		WarmupCycles:  NoWarmup,
		MeasureCycles: 10000,
		Seed:          23,
	}
	sim, err := New(f, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	created := int64(res.PacketsCreated) * int64(cfg.PacketLength)
	if res.FlitsDelivered > created {
		t.Fatalf("delivered %d flits > created %d", res.FlitsDelivered, created)
	}
	// Undelivered flits are in flight or waiting in source queues.
	if res.FlitsDelivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestAdaptiveMode(t *testing.T) {
	f, tb := randomFn(t, 37, 32, 4, core.DownUp{})
	for _, mode := range []Mode{SourceRouted, Adaptive} {
		res := run(t, f, tb, Config{
			PacketLength:  16,
			InjectionRate: 0.15,
			Mode:          mode,
			WarmupCycles:  1000,
			MeasureCycles: 8000,
			Seed:          29,
		})
		if res.PacketsDelivered == 0 {
			t.Fatalf("mode %v delivered nothing", mode)
		}
		if res.AvgLatency <= 0 || res.AvgNetworkLatency <= 0 {
			t.Fatalf("mode %v: non-positive latency", mode)
		}
		if res.AvgNetworkLatency > res.AvgLatency {
			t.Fatalf("mode %v: network latency %v exceeds total %v",
				mode, res.AvgNetworkLatency, res.AvgLatency)
		}
	}
	if SourceRouted.String() != "source-routed" || Adaptive.String() != "adaptive" {
		t.Fatal("mode names wrong")
	}
}

func TestBufferDepthOne(t *testing.T) {
	// Depth 1 must still be functional (slower, never deadlocked).
	f, tb := randomFn(t, 41, 20, 4, routing.UpDown{})
	res := run(t, f, tb, Config{
		PacketLength:  8,
		BufferDepth:   1,
		InjectionRate: 0.05,
		WarmupCycles:  1000,
		MeasureCycles: 8000,
		Seed:          31,
	})
	if res.PacketsDelivered == 0 {
		t.Fatal("depth-1 network delivered nothing")
	}
}

// TestDeadlockDetection demonstrates the premise of the whole paper: an
// unrestricted (turn-cycle-admitting) routing function on a ring really
// does deadlock under wormhole switching, and the watchdog reports it.
func TestDeadlockDetection(t *testing.T) {
	g := topology.Ring(4)
	tr, err := ctree.Build(g, ctree.M1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cg := cgraph.Build(tr)
	sys := turnmodel.NewSystem(cg, turnmodel.EightDir{}, turnmodel.NewMask(8, nil))
	f := &routing.Function{AlgorithmName: "unrestricted", Sys: sys}
	tb := routing.NewTable(f)
	sim, err := New(f, tb, Config{
		PacketLength:      64,
		BufferDepth:       2, // small buffers: classic deadlock conditions
		InjectionRate:     0.8,
		WarmupCycles:      NoWarmup,
		MeasureCycles:     50000,
		DeadlockThreshold: 1000,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run()
	if err == nil {
		t.Fatal("unrestricted ring at high load did not deadlock")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestVerifiedNeverDeadlocks stresses every verified algorithm at beyond-
// saturation load with a tight watchdog: none may deadlock.
func TestVerifiedNeverDeadlocks(t *testing.T) {
	algs := []routing.Algorithm{core.DownUp{}, routing.LTurn{}, routing.UpDown{}, routing.RightLeft{}}
	for _, alg := range algs {
		f, tb := randomFn(t, 47, 32, 4, alg)
		sim, err := New(f, tb, Config{
			PacketLength:      32,
			InjectionRate:     1.0,
			WarmupCycles:      NoWarmup,
			MeasureCycles:     20000,
			DeadlockThreshold: 5000,
			Seed:              3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatalf("%s deadlocked: %v", alg.Name(), err)
		}
	}
}

func TestPaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale smoke test skipped in -short mode")
	}
	// One short run at the paper's scale: 128 switches, 4 ports, 128-flit
	// packets.
	f, tb := randomFn(t, 53, 128, 4, core.DownUp{})
	res := run(t, f, tb, Config{
		InjectionRate: 0.02,
		WarmupCycles:  2000,
		MeasureCycles: 6000,
		Seed:          9,
	})
	if res.PacketsDelivered == 0 {
		t.Fatal("paper-scale run delivered nothing")
	}
	if res.AvgLatency < 128 {
		t.Fatalf("latency %.1f below packet serialization bound", res.AvgLatency)
	}
}

func BenchmarkSimCycle128x4(b *testing.B) {
	f, tb := randomFn(b, 1, 128, 4, core.DownUp{})
	sim, err := New(f, tb, Config{
		InjectionRate: 0.05,
		WarmupCycles:  NoWarmup,
		MeasureCycles: 1,
		Seed:          1,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the network, then time individual cycles.
	sim.cfg.MeasureCycles = b.N
	b.ResetTimer()
	if _, err := sim.Run(); err != nil {
		b.Fatal(err)
	}
}
