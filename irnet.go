// Package irnet is a toolkit for deadlock-free routing on irregular
// wormhole-switched networks. It implements the DOWN/UP routing algorithm
// of Sun, Yang, Chung, and Huang ("An Efficient Deadlock-Free Tree-Based
// Routing Algorithm for Irregular Wormhole-Routed Networks Based on the
// Turn Model", ICPP 2004) together with the baselines it is evaluated
// against (L-turn, up*/down*, right/left), a flit-level wormhole network
// simulator, and the full experiment harness that regenerates the paper's
// Figure 8 and Tables 1-4.
//
// # Quick start
//
//	g, _ := irnet.RandomNetwork(128, 4, 1)      // 128 switches, 4 ports
//	b, _ := irnet.NewBuild(g, irnet.M1, 0)      // coordinated tree + CG
//	fn, _ := b.Route(irnet.DownUp())            // DOWN/UP routing
//	err := fn.Verify()                          // deadlock-free + connected
//	tb := irnet.NewTable(fn)                    // all shortest legal paths
//	res, _ := irnet.Simulate(fn, tb, irnet.SimConfig{InjectionRate: 0.1})
//
// The heavy lifting lives in focused subpackages (topology, ctree, cgraph,
// turnmodel, core, routing, traffic, wormsim, metrics, harness); this
// package re-exports the surface a downstream user needs, with aliases so
// the underlying types are nameable without importing internal packages.
package irnet

import (
	"repro/internal/cgraph"
	"repro/internal/core"
	"repro/internal/ctree"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/turnmodel"
	"repro/internal/turnsearch"
	"repro/internal/workload"
	"repro/internal/wormsim"
)

// Core graph and tree types.
type (
	// Graph is an undirected switch-interconnection topology.
	Graph = topology.Graph
	// Tree is a coordinated tree (BFS spanning tree with preorder X and
	// level Y coordinates).
	Tree = ctree.Tree
	// TreePolicy selects the preorder child ordering (M1, M2, M3).
	TreePolicy = ctree.Policy
	// CommGraph is the communication graph: the directed-channel view of a
	// topology under a coordinated tree, with Definition 5 directions.
	CommGraph = cgraph.CG
	// Channel is one unidirectional communication channel.
	Channel = cgraph.Channel
	// Direction is the eight-way channel direction of Definition 5.
	Direction = cgraph.Direction
)

// Tree policies (paper §5: the next preorder node is the smallest node
// number for M1, random for M2, largest for M3).
const (
	M1 = ctree.M1
	M2 = ctree.M2
	M3 = ctree.M3
)

// Routing types.
type (
	// Algorithm constructs routing functions from communication graphs.
	Algorithm = routing.Algorithm
	// RoutingFunction is a built per-node allowed-turn configuration.
	RoutingFunction = routing.Function
	// Table holds all-pairs shortest legal paths for a routing function.
	Table = routing.Table
	// PathSource is the simulator's view of a routing implementation
	// (Table implements it; so does a compiled-FIB router).
	PathSource = routing.PathSource
)

// Simulation types.
type (
	// SimConfig parameterizes one wormhole simulation.
	SimConfig = wormsim.Config
	// SimResult carries one simulation's counters.
	SimResult = wormsim.Result
	// SimMode selects source-routed or adaptive path selection.
	SimMode = wormsim.Mode
	// SimEngine selects the cycle-loop implementation (event-driven fast
	// path, full-scan baseline, or the multi-worker parallel engine); all
	// produce byte-identical results.
	SimEngine = wormsim.Engine
	// Pattern chooses packet destinations.
	Pattern = traffic.Pattern
	// NodeStats aggregates the paper's utilization metrics.
	NodeStats = metrics.NodeStats
)

// Simulation modes.
const (
	// SourceRouted picks one random legal shortest path per packet (the
	// paper's methodology).
	SourceRouted = wormsim.SourceRouted
	// Adaptive picks among free shortest-continuing channels per hop.
	Adaptive = wormsim.Adaptive
	// Deterministic fixes one shortest legal path per pair.
	Deterministic = wormsim.Deterministic
	// SelectRandom picks uniformly among free adaptive candidates.
	SelectRandom = wormsim.SelectRandom
	// SelectFirst picks the lowest-numbered free adaptive candidate.
	SelectFirst = wormsim.SelectFirst
	// SelectLeastLoaded picks the candidate with the most buffer space.
	SelectLeastLoaded = wormsim.SelectLeastLoaded
	// NoWarmup requests a measurement window that starts at cycle zero.
	NoWarmup = wormsim.NoWarmup
	// EngineEvent is the default event-driven engine: O(active) per cycle.
	EngineEvent = wormsim.EngineEvent
	// EngineScan is the original engine scanning every lane every cycle;
	// kept as the differential-testing and benchmarking baseline.
	EngineScan = wormsim.EngineScan
	// EngineParallel partitions switches across a worker pool for large
	// fabrics; byte-identical to EngineEvent at every worker count (see
	// SimConfig.Workers).
	EngineParallel = wormsim.EngineParallel
)

// Evaluation (paper experiment) types.
type (
	// EvalOptions configures a full paper-style evaluation run.
	EvalOptions = harness.Options
	// EvalResults is the aggregated output of an evaluation run.
	EvalResults = harness.Results
	// EvalCell is one (ports, policy, algorithm) aggregate.
	EvalCell = harness.Cell
	// TableMetric selects one of the paper's Tables 1-4.
	TableMetric = harness.TableMetric
)

// DownUp returns the paper's DOWN/UP routing algorithm (Phases 1-3,
// including the per-node release pass).
func DownUp() Algorithm { return core.DownUp{} }

// DownUpNoRelease returns DOWN/UP without the Phase 3 release pass, for
// ablation studies.
func DownUpNoRelease() Algorithm { return core.DownUp{DisableRelease: true} }

// AutoDownUp returns the per-topology greedy variant of DOWN/UP: a maximal
// acyclic direction dependency graph derived for the specific communication
// graph (an extension beyond the paper; see core.AutoDownUp).
func AutoDownUp() Algorithm { return core.AutoDownUp{} }

// LTurn returns the reconstructed L-turn baseline (see DESIGN.md §4.2).
func LTurn() Algorithm { return routing.LTurn{} }

// UpDown returns the classic up*/down* routing.
func UpDown() Algorithm { return routing.UpDown{} }

// RightLeft returns the four-direction right/left routing variant.
func RightLeft() Algorithm { return routing.RightLeft{} }

// DFSUpDown returns the preorder-based up*/down* variant (the paper's
// reference [6] when built on a DFS tree; see NewBuildDFS).
func DFSUpDown() Algorithm { return routing.DFSUpDown{} }

// Unrestricted returns the allow-everything non-algorithm. It fails Verify
// on any cyclic topology and exists to demonstrate wormhole deadlock; see
// examples/deadlock.
func Unrestricted() Algorithm { return routing.Unrestricted{} }

// Algorithms returns every built-in algorithm, DOWN/UP first.
func Algorithms() []Algorithm {
	return []Algorithm{DownUp(), LTurn(), UpDown(), RightLeft()}
}

// AlgorithmByName resolves a name as printed by Algorithm.Name
// ("DOWN/UP", "L-turn", "up*/down*", "right/left", "DOWN/UP(no-release)"),
// returning nil if unknown.
func AlgorithmByName(name string) Algorithm {
	for _, a := range append(Algorithms(), DownUpNoRelease(), AutoDownUp(), DFSUpDown(), Unrestricted()) {
		if a.Name() == name {
			return a
		}
	}
	return nil
}

// RandomNetwork generates a random connected irregular network with the
// given switch count and per-switch port budget, as in the paper's
// evaluation (128 switches, 4 or 8 ports).
func RandomNetwork(switches, ports int, seed uint64) (*Graph, error) {
	return topology.RandomIrregular(
		topology.IrregularConfig{Switches: switches, Ports: ports, Fill: 1},
		rng.New(seed))
}

// ClusteredNetwork generates a clustered irregular network: clusters of
// densely wired switches joined by a sparse inter-cluster fabric — the
// machine-room shape of real networks of workstations.
func ClusteredNetwork(clusters, clusterSize, ports int, seed uint64) (*Graph, error) {
	return topology.ClusteredIrregular(
		topology.ClusteredConfig{Clusters: clusters, ClusterSize: clusterSize, Ports: ports},
		rng.New(seed))
}

// Build bundles the Phase 1 artifacts for one topology: the coordinated
// tree and the communication graph.
type Build struct {
	Tree *Tree
	CG   *CommGraph
}

// NewBuild runs Phase 1: it constructs the coordinated tree of g under the
// given policy (seed matters only for M2) and the communication graph on
// top of it.
func NewBuild(g *Graph, policy TreePolicy, seed uint64) (*Build, error) {
	var r *rng.Rng
	if policy == M2 {
		r = rng.New(seed)
	}
	t, err := ctree.Build(g, policy, r)
	if err != nil {
		return nil, err
	}
	return &Build{Tree: t, CG: cgraph.Build(t)}, nil
}

// NewBuildDFS is NewBuild with a depth-first-search spanning tree instead
// of the paper's BFS coordinated tree — the substrate of the DFS-based
// up*/down* baseline (reference [6]). The eight-direction taxonomy is still
// well defined on it, but the BFS level structure the DOWN/UP analysis
// assumes is not; use it with DFSUpDown.
func NewBuildDFS(g *Graph, policy TreePolicy, seed uint64) (*Build, error) {
	var r *rng.Rng
	if policy == M2 {
		r = rng.New(seed)
	}
	t, err := ctree.BuildDFS(g, policy, r)
	if err != nil {
		return nil, err
	}
	return &Build{Tree: t, CG: cgraph.Build(t)}, nil
}

// Route runs an algorithm on the build's communication graph.
func (b *Build) Route(alg Algorithm) (*RoutingFunction, error) {
	return alg.Build(b.CG)
}

// NewTable computes all-pairs shortest legal paths for a routing function.
func NewTable(f *RoutingFunction) *Table { return routing.NewTable(f) }

// Simulate runs one wormhole simulation of the routing function under cfg.
// The routing function should be Verify-ed first; simulation of a function
// that admits turn cycles can legitimately deadlock (the simulator then
// returns an error rather than hanging).
func Simulate(f *RoutingFunction, tb PathSource, cfg SimConfig) (*SimResult, error) {
	sim, err := wormsim.New(f, tb, cfg)
	if err != nil {
		return nil, err
	}
	return sim.Run()
}

// Simulator is the stepwise wormhole simulator, for callers that need
// finer control than Simulate: RunCycles in slices, fault injection and
// live rewiring mid-run, then Finish. See the wormsim package docs.
type Simulator = wormsim.Simulator

// NewSimulator constructs a stepwise Simulator; Simulate remains the
// one-shot convenience wrapper.
func NewSimulator(f *RoutingFunction, tb PathSource, cfg SimConfig) (*Simulator, error) {
	return wormsim.New(f, tb, cfg)
}

// ComputeNodeStats derives the paper's utilization metrics from a
// simulation result.
func ComputeNodeStats(cg *CommGraph, res *SimResult) (NodeStats, error) {
	return metrics.ComputeNodeStats(cg, res.ChannelFlits, res.MeasuredCycles)
}

// Uniform returns the paper's uniform destination pattern for n switches.
func Uniform(n int) Pattern { return traffic.Uniform{N: n} }

// Hotspot returns a hotspot pattern: fraction of packets target the spots.
func Hotspot(n int, spots []int, fraction float64) Pattern {
	return traffic.Hotspot{N: n, Spots: spots, Fraction: fraction}
}

// Transpose returns the matrix-transpose pattern on a square grid of n
// switches ((row, col) sends to (col, row)); n must be a perfect square.
func Transpose(n int) (Pattern, error) { return traffic.NewTranspose(n) }

// BitReversePattern returns the bit-reversal pattern for n switches; n
// must be a power of two.
func BitReversePattern(n int) (Pattern, error) { return traffic.NewBitReverse(n) }

// RandomPermutation returns a seeded fixed-point-free permutation pattern:
// every switch sends all its traffic to one fixed partner.
func RandomPermutation(n int, seed uint64) (Pattern, error) {
	return traffic.NewPermutation(n, rng.New(seed))
}

// HotspotStudyOptions configures the hot-spot contention study.
type HotspotStudyOptions = harness.HotspotOptions

// HotspotStudyResults is the hot-spot study output.
type HotspotStudyResults = harness.HotspotResults

// DefaultHotspotOptions returns the default hot-spot study configuration.
func DefaultHotspotOptions() HotspotStudyOptions { return harness.DefaultHotspotOptions() }

// RunHotspotStudy sweeps hot-traffic fractions and compares algorithms
// (the Pfister-Norton workload behind the paper's Table 3 metric).
func RunHotspotStudy(opts HotspotStudyOptions) (*HotspotStudyResults, error) {
	return harness.HotspotStudy(opts)
}

// FormatHotspot renders a hot-spot study as text.
func FormatHotspot(r *HotspotStudyResults) string { return harness.FormatHotspot(r) }

// Collective-workload types (closed-loop dependency-driven traffic; see
// internal/workload and harness.CollectiveStudy).
type (
	// WorkloadDAG is a dependency-driven collective job.
	WorkloadDAG = workload.DAG
	// WorkloadMessage is one transfer in a collective job.
	WorkloadMessage = workload.Message
	// WorkloadEngine schedules a DAG as a closed-loop simulator source.
	WorkloadEngine = workload.Engine
	// WorkloadStats summarizes a completed collective run (makespan,
	// per-message latency, per-step completion).
	WorkloadStats = workload.Stats
	// ClosedLoop is the simulator's closed-loop source interface.
	ClosedLoop = wormsim.ClosedLoop
	// CollectiveStudyOptions configures the collective study.
	CollectiveStudyOptions = harness.CollectiveOptions
	// CollectiveStudyResults is the collective study output.
	CollectiveStudyResults = harness.CollectiveResults
	// CollectiveStudyCell is one (ports, policy, algorithm, collective)
	// aggregate.
	CollectiveStudyCell = harness.CollectiveCell
)

// CollectiveNames lists the built-in collective workloads.
func CollectiveNames() []string { return workload.Names() }

// CollectiveByName builds the named collective DAG for an n-node topology
// with the given message size in packets.
func CollectiveByName(name string, n, packets int) (*WorkloadDAG, error) {
	return workload.ByName(name, n, packets)
}

// RunCollective drives one collective job to completion on a fresh
// simulator and reports its makespan statistics alongside the simulator
// counters. The config must leave the open-loop knobs unset.
func RunCollective(f *RoutingFunction, tb PathSource, dag *WorkloadDAG, cfg SimConfig) (WorkloadStats, *SimResult, error) {
	return workload.Run(f, tb, dag, cfg)
}

// DefaultCollectiveOptions returns the full collective study (paper scale).
func DefaultCollectiveOptions() CollectiveStudyOptions { return harness.DefaultCollectiveOptions() }

// QuickCollectiveOptions returns the scaled-down collective study.
func QuickCollectiveOptions() CollectiveStudyOptions { return harness.QuickCollectiveOptions() }

// RunCollectiveStudy runs collectives × algorithms × tree policies × port
// counts and aggregates makespan over samples.
func RunCollectiveStudy(opts CollectiveStudyOptions) (*CollectiveStudyResults, error) {
	return harness.CollectiveStudy(opts)
}

// FormatCollectives renders a collective study as text.
func FormatCollectives(r *CollectiveStudyResults) string { return harness.FormatCollectives(r) }

// CollectiveJSON renders a collective study as deterministic JSON.
func CollectiveJSON(r *CollectiveStudyResults) ([]byte, error) { return harness.CollectiveJSON(r) }

// RunEvaluation executes a full paper-style evaluation.
func RunEvaluation(opts EvalOptions) (*EvalResults, error) { return harness.Run(opts) }

// PaperEvalOptions returns the paper-scale evaluation configuration.
func PaperEvalOptions() EvalOptions { return harness.PaperOptions() }

// QuickEvalOptions returns a scaled-down evaluation configuration.
func QuickEvalOptions() EvalOptions { return harness.QuickOptions() }

// FormatTable renders one of the paper's Tables 1-4.
func FormatTable(res *EvalResults, m TableMetric) string { return harness.FormatTable(res, m) }

// FormatFigure8 renders the Figure 8 series for one port configuration.
func FormatFigure8(res *EvalResults, ports int) string { return harness.FormatFigure8(res, ports) }

// FigureSVG renders the Figure 8 chart for one port configuration as a
// self-contained SVG document.
func FigureSVG(res *EvalResults, ports int) string { return harness.FigureSVG(res, ports) }

// FormatSummary renders a per-configuration digest.
func FormatSummary(res *EvalResults) string { return harness.FormatSummary(res) }

// EvalCSV renders all evaluation observations in CSV long form.
func EvalCSV(res *EvalResults) string { return harness.CSV(res) }

// Paper table selectors.
const (
	Table1 = harness.Table1
	Table2 = harness.Table2
	Table3 = harness.Table3
	Table4 = harness.Table4
)

// Fault-injection and reconfiguration types (package fault).
type (
	// FaultSchedule scripts link/switch failures at given cycles.
	FaultSchedule = fault.Schedule
	// FaultEvent is one scripted failure.
	FaultEvent = fault.Event
	// FaultScheduleConfig parameterizes RandomFaultSchedule.
	FaultScheduleConfig = fault.ScheduleConfig
	// FaultRunOptions configures one faulted simulation.
	FaultRunOptions = fault.Options
	// FaultRunResult is one faulted simulation's outcome.
	FaultRunResult = fault.Result
	// RecoveryPolicy selects drain or drop recovery.
	RecoveryPolicy = fault.RecoveryPolicy
	// DeadlockInfo is the structured diagnostic of a watchdog abort: which
	// virtual channels wait on which, and the cycle among them.
	DeadlockInfo = wormsim.DeadlockInfo
	// DeadlockError wraps DeadlockInfo as the simulator's error.
	DeadlockError = wormsim.DeadlockError
	// LivelockInfo is the structured diagnostic of a livelock: the starving
	// packet, its age, and the bound it exceeded.
	LivelockInfo = wormsim.LivelockInfo
	// LivelockError wraps LivelockInfo as the simulator's error.
	LivelockError = wormsim.LivelockError
)

// Fault kinds and recovery policies.
const (
	// LinkDown fails one bidirectional link.
	LinkDown = fault.LinkDown
	// SwitchDown fails one switch and everything incident to it.
	SwitchDown = fault.SwitchDown
	// DrainRecovery pauses injection and drains in-flight traffic under the
	// old routing before installing the rebuilt one (static draining
	// reconfiguration).
	DrainRecovery = fault.Drain
	// DropRecovery discards in-flight traffic and resumes immediately.
	DropRecovery = fault.Drop
	// ImmediateRecovery rewires routing without draining or dropping:
	// in-flight traffic keeps moving and mixes old-route and new-route
	// packets, which can form wait-for cycles no static analysis rules out.
	// Only viable with SimConfig.RecoverDeadlocks (online recovery).
	ImmediateRecovery = fault.Immediate
	// NoLivelockCheck disables the livelock age bound (SimConfig
	// LivelockThreshold sentinel; a zero value selects the default policy).
	NoLivelockCheck = wormsim.NoLivelockCheck
)

// RandomFaultSchedule generates a deterministic connectivity-preserving
// failure schedule for g.
func RandomFaultSchedule(g *Graph, cfg FaultScheduleConfig, seed uint64) (*FaultSchedule, error) {
	return fault.Random(g, cfg, rng.New(seed))
}

// RunFaulted executes one simulation under a failure schedule, recovering
// after each failure by rebuilding the coordinated tree and routing function
// on the surviving topology.
func RunFaulted(g *Graph, sched *FaultSchedule, opts FaultRunOptions) (*FaultRunResult, error) {
	return fault.Run(g, sched, opts)
}

// FaultStudyOptions configures the fault-tolerance sweep.
type FaultStudyOptions = harness.FaultOptions

// FaultStudyResults is the fault-tolerance sweep output.
type FaultStudyResults = harness.FaultResults

// DefaultFaultOptions returns the default fault sweep configuration.
func DefaultFaultOptions() FaultStudyOptions { return harness.DefaultFaultOptions() }

// RunFaultStudy sweeps failure counts and compares recovery policies.
func RunFaultStudy(opts FaultStudyOptions) (*FaultStudyResults, error) {
	return harness.FaultStudy(opts)
}

// FormatFaults renders a fault study as text.
func FormatFaults(r *FaultStudyResults) string { return harness.FormatFaults(r) }

// Recovery-study types (the immediate-reconfiguration sweep with online
// deadlock recovery).
type (
	// RecoveryStudyOptions configures the recovery study.
	RecoveryStudyOptions = harness.RecoveryOptions
	// RecoveryStudyResults is the recovery study output.
	RecoveryStudyResults = harness.RecoveryResults
	// RecoveryStudyPoint is one failure-count aggregate of the study.
	RecoveryStudyPoint = harness.RecoveryPoint
)

// DefaultRecoveryStudyOptions returns a sweep tuned so mixed-generation
// deadlocks actually occur (they are rare events).
func DefaultRecoveryStudyOptions() RecoveryStudyOptions { return harness.DefaultRecoveryOptions() }

// RunRecoveryStudy sweeps failure counts under immediate reconfiguration
// with the online deadlock detector enabled, reporting deadlock frequency
// and recovery cost.
func RunRecoveryStudy(opts RecoveryStudyOptions) (*RecoveryStudyResults, error) {
	return harness.RecoveryStudy(opts)
}

// FormatRecovery renders a recovery study as text.
func FormatRecovery(r *RecoveryStudyResults) string { return harness.FormatRecovery(r) }

// SkipRecord describes one simulation a KeepGoing evaluation abandoned.
type SkipRecord = harness.SkipRecord

// FormatSkipped renders the skipped section of a KeepGoing evaluation
// (empty string when nothing was skipped).
func FormatSkipped(res *EvalResults) string { return harness.FormatSkipped(res) }

// Turn-set search and routing-existence types (see internal/turnsearch and
// the existence checker in internal/turnmodel).
type (
	// ExistenceResult is the verdict and witness of the routing-existence
	// check (deadlock freedom via the channel dependency graph, plus
	// all-pairs connectivity).
	ExistenceResult = turnmodel.ExistenceResult
	// TurnSearchOptions configures one minimal-turn-set search.
	TurnSearchOptions = turnsearch.Options
	// TurnSearchResult is a search outcome: all restart candidates plus
	// the deterministic winner.
	TurnSearchResult = turnsearch.Result
	// TurnSetCandidate is one restart's maximal allowed mask.
	TurnSetCandidate = turnsearch.Candidate
	// TurnDifferentialOptions configures an oracle-agreement sweep.
	TurnDifferentialOptions = turnsearch.DifferentialOptions
	// TurnDifferentialReport aggregates an oracle-agreement sweep.
	TurnDifferentialReport = turnsearch.DifferentialReport
	// TurnSearchStudyOptions configures the minimal-turn-set study.
	TurnSearchStudyOptions = harness.TurnSearchOptions
	// TurnSearchStudyResults is the study output behind
	// results/turnsearch_sweep.txt and results/BENCH_turnsearch.json.
	TurnSearchStudyResults = harness.TurnSearchResults
)

// ExistenceCheck decides whether the routing function's turn configuration
// admits a deadlock-free, fully connected routing on its topology,
// returning an auditable witness either way. It is exact (necessary and
// sufficient) where CertifyBase is sufficient-only.
func ExistenceCheck(f *RoutingFunction) *ExistenceResult {
	return turnmodel.ExistenceCheck(f.Sys)
}

// SearchTurnSets finds a subset-minimal prohibited-turn set for the
// communication graph: deadlock-free, fully connected, and as few
// prohibitions as the greedy restarts manage (deterministic in the
// options; Workers never changes the result).
func SearchTurnSets(cg *CommGraph, opts TurnSearchOptions) (*TurnSearchResult, error) {
	return turnsearch.Search(cg, opts)
}

// RoutingFromTurnSet turns a searched (or hand-written) candidate mask
// into a simulatable routing function. Verify it before simulating.
func RoutingFromTurnSet(cg *CommGraph, c *TurnSetCandidate) *RoutingFunction {
	return routing.FromMask(cg, turnmodel.EightDir{}, c.Mask, "")
}

// VerifyExistenceWitness runs ExistenceCheck on the routing function and
// independently re-validates the witness it returns (the channel escape
// order when deadlock-free, the dependency cycle otherwise), so a verdict
// never has to be taken on faith.
func VerifyExistenceWitness(f *RoutingFunction) error {
	return turnmodel.ExistenceCheck(f.Sys).VerifyWitness(f.Sys)
}

// ProveTurnDeadlock compiles a dependency-cycle witness (ExistenceCheck's
// Cycle field) into an adversarial workload and runs it against the
// routing function in the simulator until the online wait-for-graph
// detector fires, returning its structured diagnostic. An error means the
// workload completed instead — a genuine disagreement between the static
// and dynamic oracles that the caller must surface.
func ProveTurnDeadlock(f *RoutingFunction, cycle []int) (*DeadlockInfo, error) {
	return turnsearch.ProveDeadlock(f, cycle)
}

// TurnDifferential cross-validates the existence checker, the DFS cycle
// finder, the stratification certifier, and (sampled) wormsim over a
// matrix of random configurations, erroring on the first disagreement.
func TurnDifferential(opts TurnDifferentialOptions) (*TurnDifferentialReport, error) {
	return turnsearch.Differential(opts)
}

// DefaultTurnSearchStudyOptions returns the paper-scale sweep behind
// `make turns` (128 switches, 4/8-port, M1/M2/M3).
func DefaultTurnSearchStudyOptions() TurnSearchStudyOptions {
	return harness.DefaultTurnSearchOptions()
}

// QuickTurnSearchStudyOptions returns a scaled-down sweep for smoke tests.
func QuickTurnSearchStudyOptions() TurnSearchStudyOptions {
	return harness.QuickTurnSearchOptions()
}

// RunTurnSearchStudy searches minimal turn sets per (ports, policy)
// combination and simulates them head-to-head against DOWN/UP.
func RunTurnSearchStudy(opts TurnSearchStudyOptions) (*TurnSearchStudyResults, error) {
	return harness.TurnSearchStudy(opts)
}

// FormatTurnSearch renders a turn-search study as text.
func FormatTurnSearch(r *TurnSearchStudyResults) string { return harness.FormatTurnSearch(r) }

// TurnSearchJSON renders a turn-search study as deterministic JSON.
func TurnSearchJSON(r *TurnSearchStudyResults) ([]byte, error) { return harness.TurnSearchJSON(r) }

// Topology zoo: deterministic structured families (full mesh, dragonfly,
// circulant, flattened butterfly) with structure-aware native routers and
// the cross-family shootout that races them against the paper's
// tree-based algorithms (see internal/topology's zoo generators and
// harness.ZooStudy).
type (
	// TopologyStructure is the family/parameters/coordinates label the zoo
	// generators attach to their graphs.
	TopologyStructure = topology.Structure
	// ValiantSource is a path source that prefixes a random certified-legal
	// detour to a random intermediate switch (Valiant load balancing).
	ValiantSource = routing.Valiant
	// ZooStudyOptions configures the cross-family shootout.
	ZooStudyOptions = harness.ZooOptions
	// ZooStudyResults is the shootout output behind results/BENCH_zoo.json.
	ZooStudyResults = harness.ZooResults
	// ZooStudyFamily is one topology family's block of the shootout.
	ZooStudyFamily = harness.ZooFamily
	// ZooStudyPoint is one (family, router) row of the shootout.
	ZooStudyPoint = harness.ZooPoint
)

// FullMeshNetwork returns the complete graph on n switches, labeled with
// the full-mesh family.
func FullMeshNetwork(n int) (*Graph, error) { return topology.FullMesh(n) }

// DragonflyNetwork returns the balanced dragonfly with a routers per
// group, p terminals per router, and h global links per router.
func DragonflyNetwork(a, p, h int) (*Graph, error) { return topology.Dragonfly(a, p, h) }

// CirculantNetwork returns the circulant graph C(n; gens).
func CirculantNetwork(n int, gens ...int) (*Graph, error) { return topology.Circulant(n, gens...) }

// FlattenedButterflyNetwork returns the k-ary n-flat flattened butterfly.
func FlattenedButterflyNetwork(k, n int) (*Graph, error) {
	return topology.FlattenedButterfly(k, n)
}

// FullMeshVCFree returns the HOTI'25-style VC-free full-mesh router.
func FullMeshVCFree() Algorithm { return routing.FullMeshVCFree{} }

// DragonflyMinimal returns minimal dragonfly routing for groups of a
// routers.
func DragonflyMinimal(a int) Algorithm { return routing.DragonflyMin{A: a} }

// CirculantDateline returns the dateline shortest-path circulant router.
func CirculantDateline() Algorithm { return routing.CirculantDateline{} }

// FlatButterflyDOR returns dimension-order routing for the k-ary n-flat
// flattened butterfly.
func FlatButterflyDOR(k, n int) Algorithm { return routing.FlatButterflyDOR{K: k, N: n} }

// NativeAlgorithm returns the structure-aware router native to a graph's
// family label (DOWN/UP with automatic scheme selection for unlabeled
// graphs).
func NativeAlgorithm(g *Graph) Algorithm { return harness.NativeFor(g) }

// NewValiantSource wraps a routing table in a Valiant-style non-minimal
// path source; every emitted path stays inside the table's certified turn
// configuration.
func NewValiantSource(tb *Table) *ValiantSource { return routing.NewValiant(tb) }

// DefaultZooStudyOptions returns the paper-scale shootout behind
// `make zoo`.
func DefaultZooStudyOptions() ZooStudyOptions { return harness.DefaultZooOptions() }

// QuickZooStudyOptions returns the scaled-down shootout for smoke tests.
func QuickZooStudyOptions() ZooStudyOptions { return harness.QuickZooOptions() }

// RunZooStudy runs the cross-family routing shootout: every zoo family ×
// {DOWN/UP, up*/down*, L-turn, family-native router}, each certified by
// the exact existence check before simulation.
func RunZooStudy(opts ZooStudyOptions) (*ZooStudyResults, error) { return harness.ZooStudy(opts) }

// FormatZoo renders a zoo study as text.
func FormatZoo(r *ZooStudyResults) string { return harness.FormatZoo(r) }

// ZooJSON renders a zoo study as deterministic JSON.
func ZooJSON(r *ZooStudyResults) ([]byte, error) { return harness.ZooJSON(r) }
