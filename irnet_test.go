package irnet_test

import (
	"strings"
	"testing"

	irnet "repro"
	"repro/internal/ctree"
)

func TestQuickStartFlow(t *testing.T) {
	// The README's quick-start sequence must work end to end.
	g, err := irnet.RandomNetwork(32, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := irnet.NewBuild(g, irnet.M1, 0)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := b.Route(irnet.DownUp())
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.Verify(); err != nil {
		t.Fatal(err)
	}
	tb := irnet.NewTable(fn)
	res, err := irnet.Simulate(fn, tb, irnet.SimConfig{
		PacketLength:  16,
		InjectionRate: 0.1,
		WarmupCycles:  500,
		MeasureCycles: 3000,
		Seed:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsDelivered == 0 {
		t.Fatal("nothing delivered")
	}
	st, err := irnet.ComputeNodeStats(b.CG, res)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mean <= 0 {
		t.Fatal("zero node utilization")
	}
}

func TestAllAlgorithmsExposed(t *testing.T) {
	names := map[string]bool{}
	for _, a := range irnet.Algorithms() {
		names[a.Name()] = true
	}
	for _, want := range []string{"DOWN/UP", "L-turn", "up*/down*", "right/left"} {
		if !names[want] {
			t.Errorf("algorithm %q not exposed", want)
		}
	}
	if irnet.AlgorithmByName("DOWN/UP") == nil {
		t.Error("AlgorithmByName failed for DOWN/UP")
	}
	if irnet.AlgorithmByName("DOWN/UP(no-release)") == nil {
		t.Error("AlgorithmByName failed for no-release variant")
	}
	if irnet.AlgorithmByName("nope") != nil {
		t.Error("AlgorithmByName resolved nonsense")
	}
}

func TestEveryAlgorithmVerifiesViaFacade(t *testing.T) {
	g, err := irnet.RandomNetwork(24, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []irnet.TreePolicy{irnet.M1, irnet.M2, irnet.M3} {
		b, err := irnet.NewBuild(g, pol, 9)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range irnet.Algorithms() {
			fn, err := b.Route(alg)
			if err != nil {
				t.Fatalf("%s/%v: %v", alg.Name(), pol, err)
			}
			if err := fn.Verify(); err != nil {
				t.Fatalf("%s/%v: %v", alg.Name(), pol, err)
			}
		}
	}
}

func TestPatternsExposed(t *testing.T) {
	if irnet.Uniform(8).Name() != "uniform" {
		t.Error("Uniform wrong")
	}
	if irnet.Hotspot(8, []int{0}, 0.3).Name() != "hotspot" {
		t.Error("Hotspot wrong")
	}
}

func TestEvaluationViaFacade(t *testing.T) {
	o := irnet.QuickEvalOptions()
	o.Switches = 16
	o.Samples = 1
	o.Ports = []int{4}
	o.Policies = []irnet.TreePolicy{irnet.M1}
	o.PacketLength = 16
	o.Rates = []float64{0.1}
	o.WarmupCycles = 300
	o.MeasureCycles = 1500
	res, err := irnet.RunEvaluation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	for _, m := range []irnet.TableMetric{irnet.Table1, irnet.Table2, irnet.Table3, irnet.Table4} {
		if !strings.Contains(irnet.FormatTable(res, m), "Table") {
			t.Error("table render broken")
		}
	}
	if !strings.Contains(irnet.FormatFigure8(res, 4), "series") {
		t.Error("figure render broken")
	}
	if !strings.Contains(irnet.EvalCSV(res), "ports,") {
		t.Error("csv render broken")
	}
	_ = ctree.M1 // keep explicit import parity with bench file
}

func TestClusteredNetworkFacade(t *testing.T) {
	g, err := irnet.ClusteredNetwork(4, 6, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 24 || !g.Connected() {
		t.Fatalf("clustered network wrong: %v", g)
	}
}

func TestDFSFlowViaFacade(t *testing.T) {
	g, err := irnet.RandomNetwork(24, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := irnet.NewBuildDFS(g, irnet.M1, 0)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := b.Route(irnet.DFSUpDown())
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := fn.CertifyBase(); err != nil {
		t.Fatal(err)
	}
}

func TestSimulationKnobsViaFacade(t *testing.T) {
	g, err := irnet.RandomNetwork(20, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := irnet.NewBuild(g, irnet.M1, 0)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := b.Route(irnet.DownUp())
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.Verify(); err != nil {
		t.Fatal(err)
	}
	tb := irnet.NewTable(fn)
	cfgs := []irnet.SimConfig{
		{PacketLength: 8, InjectionRate: 0.1, Mode: irnet.Deterministic,
			WarmupCycles: 300, MeasureCycles: 1500, Seed: 1},
		{PacketLength: 8, InjectionRate: 0.1, Mode: irnet.Adaptive, Select: irnet.SelectLeastLoaded,
			WarmupCycles: 300, MeasureCycles: 1500, Seed: 1},
		{PacketLength: 8, InjectionRate: 0.1, MeanBurst: 4, VirtualChannels: 2,
			WarmupCycles: 300, MeasureCycles: 1500, Seed: 1},
	}
	for i, cfg := range cfgs {
		res, err := irnet.Simulate(fn, tb, cfg)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if res.PacketsDelivered == 0 {
			t.Fatalf("config %d delivered nothing", i)
		}
	}
}

func TestHotspotStudyViaFacade(t *testing.T) {
	o := irnet.DefaultHotspotOptions()
	o.Switches = 16
	o.Samples = 1
	o.Fractions = []float64{0.2}
	o.PacketLength = 16
	o.WarmupCycles = 300
	o.MeasureCycles = 1200
	res, err := irnet.RunHotspotStudy(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 || !strings.Contains(irnet.FormatHotspot(res), "hotFrac") {
		t.Fatal("hotspot study broken via facade")
	}
}

func TestFigureSVGViaFacade(t *testing.T) {
	o := irnet.QuickEvalOptions()
	o.Switches = 16
	o.Samples = 1
	o.Ports = []int{4}
	o.Policies = []irnet.TreePolicy{irnet.M1}
	o.PacketLength = 16
	o.Rates = []float64{0.1, 0.3}
	o.WarmupCycles = 300
	o.MeasureCycles = 1200
	res, err := irnet.RunEvaluation(o)
	if err != nil {
		t.Fatal(err)
	}
	svg := irnet.FigureSVG(res, 4)
	if !strings.HasPrefix(svg, "<svg") {
		t.Fatal("FigureSVG broken via facade")
	}
}
